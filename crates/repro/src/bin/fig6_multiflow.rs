//! Figure 6: detecting DDOS attacks split across k OD flows.
//!
//! §6.3.2: the multi-source DDOS trace is partitioned by source into k
//! equal-traffic groups injected into k OD flows sharing a destination
//! PoP; detection rate is reported per (k, thinning) at both thresholds.
//!
//! Expected shape (paper Figure 6): detection rates *increase* with k —
//! attacks individually dwarfed in each flow remain visible network-wide,
//! the multiway method's headline property.

use entromine::net::{OdPair, Topology};
use entromine::synth::distr::poisson;
use entromine::synth::traces::{sampled_attack_packets, sampled_count};
use entromine::synth::TraceKind;
use entromine_repro::{
    abilene_config, banner, choose, csv, for_each_combination, InjectionBench, Scale,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 6 — multi-OD-flow DDOS detection",
        "§6.3.2, Figure 6(a)/(b)",
        scale,
    );

    let mut config = abilene_config(6, scale);
    config.n_bins = config.n_bins.min(2 * 288);
    eprintln!("building the injection bench ...");
    let bench = InjectionBench::new(Topology::abilene(), config.clone(), 150);
    let p = bench.dataset.net.indexer().n_pops();
    let kind = TraceKind::DosMulti;

    // The paper sweeps every combination of k origins for every
    // destination PoP; quick mode caps combinations per (k, dest) to keep
    // the grid tractable on two cores.
    let combo_cap = match scale {
        Scale::Quick => 12,
        Scale::Full => usize::MAX,
    };
    let thinnings: &[u64] = &[100, 1000, 10_000];
    let alphas = [0.999, 0.995];

    let mut out = csv::create("fig6_multiflow.csv");
    csv::row(
        &mut out,
        &["k,thinning,alpha,detection_rate,experiments,pkts_per_flow".into()],
    );

    for &alpha in &alphas {
        let (tb, tp, te) = bench.thresholds(alpha);
        println!("\n== detection threshold alpha = {alpha}");
        print!("{:>4} |", "k");
        for &f in thinnings {
            print!(" {:>11}", format!("thin {f}"));
        }
        println!();
        for k in 2..=p {
            print!("{:>4} |", k);
            for &factor in thinnings {
                // Total attack packets per bin, split across k flows.
                let total =
                    sampled_count(kind, factor, config.sample_rate, 300, config.traffic_scale);
                let per_flow = total / k as f64;
                let mut experiments = 0usize;
                let mut hits = 0usize;
                let mut rng = SmallRng::seed_from_u64(
                    0xF166 ^ (k as u64) << 32 ^ factor ^ ((alpha * 1000.0) as u64) << 16,
                );
                for dest in 0..p {
                    let origins: Vec<usize> = (0..p).filter(|&o| o != dest).collect();
                    for_each_combination(origins.len(), k.min(origins.len()), combo_cap, |combo| {
                        // Build the k-flow injection.
                        let mut packet_sets = Vec::with_capacity(k);
                        for &oi in combo {
                            let od = OdPair::new(origins[oi], dest);
                            let n = poisson(&mut rng, per_flow);
                            packet_sets.push((
                                bench.dataset.net.indexer().index(od),
                                sampled_attack_packets(
                                    kind,
                                    bench.dataset.net.plan(),
                                    od,
                                    n,
                                    bench.bin as u64 * 300,
                                    0xDD05 ^ (dest as u64) << 40 ^ (oi as u64) << 20 ^ factor,
                                ),
                            ));
                        }
                        let injections: Vec<(usize, &[_])> = packet_sets
                            .iter()
                            .map(|(f, pkts)| (*f, pkts.as_slice()))
                            .collect();
                        let (b, pk, e) = bench.evaluate(&injections);
                        experiments += 1;
                        if b > tb || pk > tp || e > te {
                            hits += 1;
                        }
                    });
                }
                let rate = hits as f64 / experiments.max(1) as f64;
                print!(" {:>10.0}%", 100.0 * rate);
                csv::row(
                    &mut out,
                    &[format!(
                        "{k},{factor},{alpha},{rate:.4},{experiments},{per_flow:.2}"
                    )],
                );
            }
            println!();
        }
        let full = choose(p - 1, 2) * p;
        println!(
            "  (quick mode samples up to {combo_cap} of the {} k=2 origin combinations per dest; \
             --full sweeps all {} experiments per cell)",
            choose(p - 1, 2),
            full
        );
    }
    println!(
        "\nexpected shape: rates rise with k at fixed thinning — a DDOS split 11\n\
         ways is *easier* to see network-wide than one concentrated in a flow.\n\
         wrote results/fig6_multiflow.csv"
    );
}
