//! Tables 4 & 5: the injected traces and their thinned intensities.
//!
//! Table 4 lists the three labelled attack traces and their intensities;
//! Table 5 gives, per thinning factor, the resulting packets/second and
//! the percentage of an average OD flow's traffic. This binary recomputes
//! both from the trace models — and, for the worm trace (small enough to
//! materialize fully), verifies the *mechanical* §6.3.1 pipeline
//! (generate → extract → mask → remap → thin) yields the same counts as
//! the arithmetic.

use entromine::net::sample::thin_periodic;
use entromine::net::{OdPair, Topology};
use entromine::synth::traces::remap_to_network;
use entromine::synth::{AttackTrace, DatasetConfig, TraceKind};
use entromine_repro::{banner, csv, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Tables 4 & 5 — injected trace intensities", "§6.3.1", scale);

    println!("\n== Table 4: known anomaly traces injected");
    println!(
        "{:>20} {:>18} {:>26}",
        "anomaly type", "intensity (pps)", "modeled source"
    );
    for kind in TraceKind::ALL {
        let source = match kind {
            TraceKind::DosSingle | TraceKind::DosMulti => "Hussain et al. [11]",
            TraceKind::WormScan => "Schechter et al. [32]",
        };
        println!(
            "{:>20} {:>18.3e} {:>26}",
            kind.name(),
            kind.intensity_pps(),
            source
        );
    }

    // Table 5: intensities at the paper's thinning factors. The percentage
    // is relative to the paper's average OD flow rate (2068 pps).
    let paper_rows: [(TraceKind, &[u64]); 3] = [
        (TraceKind::DosSingle, &[0, 10, 100, 1000, 10_000, 100_000]),
        (TraceKind::DosMulti, &[0, 10, 100, 1000, 10_000, 100_000]),
        (TraceKind::WormScan, &[0, 10, 100, 500, 1000]),
    ];
    let mean_pps = DatasetConfig::PAPER_MEAN_PPS;

    let mut out = csv::create("table5_intensity.csv");
    csv::row(&mut out, &["trace,thinning,pps,percent_of_od_flow".into()]);
    println!("\n== Table 5: intensity of injected anomalies per thinning factor");
    println!(
        "{:>20} {:>10} {:>14} {:>12}",
        "trace", "thinning", "pkts/sec", "% of flow"
    );
    for (kind, factors) in paper_rows {
        for &f in factors {
            let eff = f.max(1) as f64;
            let pps = kind.intensity_pps() / eff;
            let pct = 100.0 * pps / (mean_pps + pps);
            println!("{:>20} {:>10} {:>14.4} {:>11.4}%", kind.name(), f, pps, pct);
            csv::row(
                &mut out,
                &[format!("{},{},{:.6},{:.6}", kind.name(), f, pps, pct)],
            );
        }
    }
    println!(
        "(paper's Table 5 reads e.g. single DOS at thinning 1000 = 347 pps = 14%;\n\
         the percentage here uses pps/(mean+pps) against the 2068 pps average)"
    );

    // Mechanical verification on the worm trace.
    println!("\n== mechanical §6.3.1 pipeline check (worm trace, fully materialized)");
    let trace = AttackTrace::generate(TraceKind::WormScan, 9, 300, usize::MAX);
    let attack = trace.extract_attack();
    println!(
        "  generated {} packets total, extracted {} attack packets",
        trace.packets.len(),
        attack.len()
    );
    let topo = Topology::abilene();
    let plan = entromine::net::AddressPlan::standard(&topo);
    let remapped = remap_to_network(&attack, &plan, OdPair::new(3, 9), true, 0, 5);
    assert_eq!(remapped.len(), attack.len());
    for &f in &[10u64, 100, 500, 1000] {
        let thinned = thin_periodic(&remapped, f);
        let expect = attack.len().div_ceil(f as usize);
        println!(
            "  thinning {f:>5}: {:>6} packets kept (expected {expect}) -> {:.3} pps represented",
            thinned.len(),
            kindless_pps(&trace, f)
        );
        assert_eq!(thinned.len(), expect, "mechanical thinning must be exact");
    }
    println!("wrote results/table5_intensity.csv");
}

fn kindless_pps(trace: &AttackTrace, thinning: u64) -> f64 {
    trace.intensity_pps / thinning.max(1) as f64
}
