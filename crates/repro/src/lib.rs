//! Shared harness for the reproduction binaries.
//!
//! Every table and figure of the paper's evaluation has a binary under
//! `src/bin/` that regenerates it from synthetic data (see DESIGN.md §6
//! for the experiment index). This library holds what they share:
//!
//! * [`Scale`] — quick (default) vs full (`--full` / `ENTROMINE_FULL=1`)
//!   experiment sizing; quick keeps every binary in the minutes range on a
//!   laptop-class machine, full matches the paper's three-week windows.
//! * [`abilene_config`] / [`geant_config`] — the canonical dataset
//!   configurations.
//! * [`InjectionBench`] — the Figure 5/6 injection harness: fits on a
//!   clean dataset once, caches the target bin's baseline histograms, and
//!   evaluates thousands of what-if injections cheaply.
//! * [`csv`] — tiny CSV writers for `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use entromine::entropy::BinAccumulator;
use entromine::net::{PacketHeader, Topology};
use entromine::synth::{Dataset, DatasetConfig};
use entromine::FittedDiagnoser;
use std::io::Write;
use std::path::PathBuf;

/// Experiment sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Two-day windows: every binary finishes in minutes on two cores.
    Quick,
    /// Paper-faithful three-week windows.
    Full,
}

impl Scale {
    /// Parses `--full` from argv or `ENTROMINE_FULL=1` from the
    /// environment; defaults to [`Scale::Quick`].
    pub fn from_env() -> Scale {
        let argv_full = std::env::args().any(|a| a == "--full");
        let env_full = std::env::var("ENTROMINE_FULL").is_ok_and(|v| v == "1");
        if argv_full || env_full {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Number of 5-minute bins for this scale.
    pub fn bins(self) -> usize {
        match self {
            Scale::Quick => 2 * 288,
            Scale::Full => 3 * 7 * 288,
        }
    }

    /// Human-readable description for banners.
    pub fn describe(self) -> &'static str {
        match self {
            Scale::Quick => "quick (2 days; pass --full for the paper's 3 weeks)",
            Scale::Full => "full (3 weeks, paper-faithful)",
        }
    }
}

/// The canonical Abilene-like dataset configuration.
pub fn abilene_config(seed: u64, scale: Scale) -> DatasetConfig {
    let mut cfg = DatasetConfig::abilene(seed);
    cfg.n_bins = scale.bins();
    cfg
}

/// The canonical Geant-like dataset configuration.
pub fn geant_config(seed: u64, scale: Scale) -> DatasetConfig {
    let mut cfg = DatasetConfig::geant(seed);
    cfg.n_bins = scale.bins();
    cfg
}

/// Prints the standard experiment banner.
pub fn banner(experiment: &str, paper_ref: &str, scale: Scale) {
    println!("================================================================");
    println!("entromine reproduction: {experiment}");
    println!("paper reference: {paper_ref}");
    println!("scale: {}", scale.describe());
    println!("================================================================");
}

/// Injection harness: a clean fitted model plus cached baseline
/// histograms for one target bin, so what-if injections cost only the
/// anomaly packets and one SPE evaluation each.
pub struct InjectionBench {
    /// The clean dataset.
    pub dataset: Dataset,
    /// The model fitted on it.
    pub fitted: FittedDiagnoser,
    /// The target bin all injections land in.
    pub bin: usize,
    baseline: Vec<BinAccumulator>,
}

impl InjectionBench {
    /// Generates a clean dataset, fits, and caches bin `bin`'s baselines.
    pub fn new(topology: Topology, config: DatasetConfig, bin: usize) -> Self {
        let dataset = Dataset::clean(topology, config);
        let fitted = entromine::Diagnoser::default()
            .fit(&dataset)
            .expect("fit clean dataset");
        let baseline = (0..dataset.n_flows())
            .map(|flow| dataset.net.baseline_cell(bin, flow))
            .collect();
        InjectionBench {
            dataset,
            fitted,
            bin,
            baseline,
        }
    }

    /// Evaluates one multi-flow injection: packets per target flow are
    /// merged into clones of the cached baselines, and the three detector
    /// statistics of the modified row are returned as
    /// `(bytes_spe, packets_spe, entropy_spe)`.
    pub fn evaluate(&self, injections: &[(usize, &[PacketHeader])]) -> (f64, f64, f64) {
        let p = self.dataset.n_flows();
        let mut entropy_row = self.dataset.tensor.unfolded_row(self.bin);
        let mut bytes_row = self.dataset.volumes.bytes().row(self.bin).to_vec();
        let mut packets_row = self.dataset.volumes.packets().row(self.bin).to_vec();
        for &(flow, packets) in injections {
            let mut acc = self.baseline[flow].clone();
            let anonymize = self.dataset.net.config().anonymize;
            for pkt in packets {
                let pkt = if anonymize { pkt.anonymized() } else { *pkt };
                acc.add_packet(&pkt);
            }
            let s = acc.summarize();
            for (k, e) in s.entropy.iter().enumerate() {
                entropy_row[k * p + flow] = *e;
            }
            bytes_row[flow] = s.bytes as f64;
            packets_row[flow] = s.packets as f64;
        }
        let b = self
            .fitted
            .bytes_model()
            .spe(&bytes_row)
            .expect("bytes spe");
        let pk = self
            .fitted
            .packets_model()
            .spe(&packets_row)
            .expect("packets spe");
        let e = self
            .fitted
            .entropy_model()
            .spe(&entropy_row)
            .expect("entropy spe");
        (b, pk, e)
    }

    /// The three detection thresholds at `alpha`.
    pub fn thresholds(&self, alpha: f64) -> (f64, f64, f64) {
        (
            self.fitted
                .bytes_model()
                .threshold(alpha)
                .expect("threshold"),
            self.fitted
                .packets_model()
                .threshold(alpha)
                .expect("threshold"),
            self.fitted
                .entropy_model()
                .threshold(alpha)
                .expect("threshold"),
        )
    }
}

/// Generates a dataset carrying a Table 3-style anomaly population.
///
/// The event count scales with the window length so quick and full runs
/// have comparable anomaly densities.
pub fn scheduled_dataset(topology: Topology, config: DatasetConfig, seed: u64) -> Dataset {
    use entromine::synth::{Schedule, SyntheticNetwork};
    let net = SyntheticNetwork::new(topology.clone(), config.clone());
    // The paper found 444 anomalies in 3 weeks of Abilene: ~21 per day.
    let days = config.n_bins as f64 / 288.0;
    let total = (21.0 * days).round() as usize;
    let events = Schedule::paper_mix(seed ^ 0xC0FFEE, total).materialize(&net);
    Dataset::generate(topology, config, events)
}

/// Fits the default diagnoser and produces the report, with progress
/// output.
pub fn diagnose(dataset: &Dataset) -> (entromine::FittedDiagnoser, entromine::DiagnosisReport) {
    eprintln!(
        "  fitting subspace models on {} bins x {} flows ...",
        dataset.n_bins(),
        dataset.n_flows()
    );
    let fitted = entromine::Diagnoser::default()
        .fit(dataset)
        .expect("fit dataset");
    let report = fitted.diagnose(dataset).expect("diagnose dataset");
    (fitted, report)
}

/// Ground-truth label for each diagnosis (None = unmatched false alarm).
pub fn truth_labels(
    report: &entromine::DiagnosisReport,
    dataset: &Dataset,
) -> Vec<Option<entromine::synth::AnomalyLabel>> {
    entromine::match_truth(report, &dataset.truth)
        .into_iter()
        .map(|o| match o {
            entromine::MatchOutcome::Truth(i) => Some(dataset.truth[i].event.label),
            entromine::MatchOutcome::FalseAlarm => None,
        })
        .collect()
}

/// Minimal CSV output under `results/`.
pub mod csv {
    use super::*;

    /// Opens `results/<name>` for writing (creating the directory).
    pub fn create(name: &str) -> std::io::BufWriter<std::fs::File> {
        let mut path = PathBuf::from("results");
        std::fs::create_dir_all(&path).expect("create results dir");
        path.push(name);
        std::io::BufWriter::new(std::fs::File::create(&path).expect("create results file"))
    }

    /// Writes one CSV row from string-ish cells.
    pub fn row<W: Write>(w: &mut W, cells: &[String]) {
        let line = cells.join(",");
        writeln!(w, "{line}").expect("write csv row");
    }

    /// Convenience for homogeneous float rows.
    pub fn float_row<W: Write>(w: &mut W, cells: &[f64]) {
        let strings: Vec<String> = cells.iter().map(|c| format!("{c}")).collect();
        row(w, &strings);
    }
}

/// `n choose k` over small arguments (Figure 6 sweeps combinations of
/// origin PoPs).
pub fn choose(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num = 1usize;
    let mut den = 1usize;
    for i in 0..k {
        num *= n - i;
        den *= i + 1;
    }
    num / den
}

/// Iterates over all `k`-subsets of `0..n` in lexicographic order, calling
/// `f` with each subset; if `cap` is hit, stops early and returns how many
/// were visited.
pub fn for_each_combination(n: usize, k: usize, cap: usize, mut f: impl FnMut(&[usize])) -> usize {
    if k == 0 || k > n {
        return 0;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    let mut visited = 0usize;
    loop {
        f(&idx);
        visited += 1;
        if visited >= cap {
            return visited;
        }
        // Find the rightmost index that can still advance.
        let mut i = k;
        let mut advanced = false;
        while i > 0 {
            i -= 1;
            if idx[i] != i + n - k {
                idx[i] += 1;
                for j in (i + 1)..k {
                    idx[j] = idx[j - 1] + 1;
                }
                advanced = true;
                break;
            }
        }
        if !advanced {
            return visited;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_values() {
        assert_eq!(choose(11, 2), 55);
        assert_eq!(choose(11, 11), 1);
        assert_eq!(choose(11, 0), 1);
        assert_eq!(choose(5, 6), 0);
        assert_eq!(choose(11, 5), 462);
    }

    #[test]
    fn combinations_enumerate_fully() {
        let mut seen = Vec::new();
        let n = for_each_combination(5, 3, usize::MAX, |c| seen.push(c.to_vec()));
        assert_eq!(n, 10);
        assert_eq!(seen.len(), 10);
        assert_eq!(seen[0], vec![0, 1, 2]);
        assert_eq!(seen[9], vec![2, 3, 4]);
        let set: std::collections::HashSet<_> = seen.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn combinations_respect_cap() {
        let mut count = 0;
        let n = for_each_combination(10, 4, 7, |_| count += 1);
        assert_eq!(n, 7);
        assert_eq!(count, 7);
    }

    #[test]
    fn combination_edge_cases() {
        assert_eq!(for_each_combination(3, 0, 10, |_| {}), 0);
        assert_eq!(for_each_combination(3, 4, 10, |_| {}), 0);
        let mut seen = 0;
        for_each_combination(4, 4, 10, |c| {
            assert_eq!(c, &[0, 1, 2, 3]);
            seen += 1;
        });
        assert_eq!(seen, 1);
    }
}
