//! Samplers used by the traffic generator.
//!
//! Only `rand` is available offline, and it ships no distributions beyond
//! the uniform family, so the generator's needs are implemented here:
//!
//! * [`poisson`] — per-bin packet counts.
//! * [`AliasTable`] — Walker's alias method for O(1) draws from a fixed
//!   categorical distribution (service mixtures, host popularity).
//! * [`zipf_weights`] — the popularity law for host pools; real address
//!   popularity is heavy-tailed (Kohler et al., IMW 2002).

use rand::Rng;

/// Draws a Poisson-distributed count with the given mean.
///
/// Uses Knuth's product-of-uniforms method for small means and the normal
/// approximation (with continuity clamp at zero) for `lambda >= 64`, where
/// the approximation error is far below anything the experiments can
/// resolve. `lambda <= 0` yields 0.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 64.0 {
        // Knuth: count multiplications until the product drops below e^-λ.
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            // Guard against pathological RNG streams.
            if k > (lambda * 20.0 + 100.0) as u64 {
                return k;
            }
        }
    } else {
        // Normal approximation: N(lambda, lambda).
        let z = standard_normal(rng);
        let v = lambda + lambda.sqrt() * z;
        if v < 0.0 {
            0
        } else {
            v.round() as u64
        }
    }
}

/// A standard normal draw via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Walker's alias method: O(n) construction, O(1) sampling from a fixed
/// discrete distribution.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds a table from (unnormalized, nonnegative) weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative/non-finite value,
    /// or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and nonnegative"
        );
        assert!(total > 0.0, "weights must not all be zero");

        // Scaled probabilities: mean 1.
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut prob = vec![1.0; n];
        let mut alias: Vec<usize> = (0..n).collect();
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Whatever remains (numerical leftovers) gets probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` if the table has no categories (never constructible).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Zipf popularity weights: `w_i ∝ 1 / (i+1)^s` for `i = 0..n`.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_zero_and_negative_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -3.0), 0);
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let lambda = 4.0;
        let n = 100_000;
        let draws: Vec<u64> = (0..n).map(|_| poisson(&mut rng, lambda)).collect();
        let mean = draws.iter().sum::<u64>() as f64 / n as f64;
        let var = draws
            .iter()
            .map(|&d| (d as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
        assert!((var - lambda).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_large_lambda_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let lambda = 5000.0;
        let n = 20_000;
        let draws: Vec<u64> = (0..n).map(|_| poisson(&mut rng, lambda)).collect();
        let mean = draws.iter().sum::<u64>() as f64 / n as f64;
        let var = draws
            .iter()
            .map(|&d| (d as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() / lambda < 0.01, "mean {mean}");
        assert!((var - lambda).abs() / lambda < 0.1, "var {var}");
    }

    #[test]
    fn alias_uniform_is_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = AliasTable::new(&[1.0, 1.0, 1.0, 1.0]);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn alias_matches_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = AliasTable::new(&[8.0, 1.0, 1.0]);
        let mut counts = [0usize; 3];
        for _ in 0..100_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        let share0 = counts[0] as f64 / 100_000.0;
        assert!((share0 - 0.8).abs() < 0.01, "share {share0}");
    }

    #[test]
    fn alias_single_category() {
        let mut rng = StdRng::seed_from_u64(6);
        let t = AliasTable::new(&[3.0]);
        assert_eq!(t.len(), 1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_zero_weight_category_never_drawn() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = AliasTable::new(&[1.0, 0.0, 1.0]);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn alias_empty_panics() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn alias_all_zero_panics() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_weights_decay() {
        let w = zipf_weights(5, 1.0);
        assert_eq!(w.len(), 5);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        // s = 0: uniform.
        let flat = zipf_weights(4, 0.0);
        assert!(flat.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn normal_draw_moments() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }
}
