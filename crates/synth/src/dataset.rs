//! End-to-end dataset construction.
//!
//! A [`Dataset`] is the synthetic analogue of "three weeks of sampled flow
//! data from every PoP": an entropy tensor `H(t, p, 4)`, byte/packet
//! volume matrices, and the ground-truth list of injected anomalies. The
//! generation pipeline per (bin, OD flow) cell is the paper's measurement
//! pipeline in miniature:
//!
//! 1. the [`RateModel`] gives the cell's
//!    sampled-packet rate (low-rank diurnal structure + noise);
//! 2. a Poisson draw fixes the packet count; outage events scale it down;
//! 3. baseline packets are drawn from the OD flow's service mixture;
//! 4. anomaly packets from any covering event are superimposed;
//! 5. the cell's four feature histograms are summarized into entropy and
//!    volume values and the histograms are dropped.
//!
//! Each cell has its own RNG stream derived from `(seed, bin, flow)`, so
//! any cell can be regenerated in isolation — that is what the
//! what-if injection API ([`Dataset::whatif_rows`]) uses to evaluate
//! thousands of candidate injections (Figures 5–6) without regenerating
//! whole datasets.

use crate::anomaly::{
    anomaly_packets, AnomalyEvent, AnomalyLabel, InjectedAnomaly, OUTAGE_RATE_FACTOR,
};
use crate::cell_seed;
use crate::distr::poisson;
use crate::eigenflow::{RateModel, BINS_PER_WEEK};
use crate::mix64;
use crate::services::{baseline_packet, EphemeralPool, HostPool, ServiceMix};
use entromine_entropy::{BinAccumulator, BinSummary, EntropyTensor, TensorBuilder, VolumeMatrix};
use entromine_net::{AddressPlan, OdIndexer, PacketHeader, Topology};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration of a synthetic network-wide dataset.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Master seed; every artifact is a pure function of it.
    pub seed: u64,
    /// Number of 5-minute bins (2016 per week).
    pub n_bins: usize,
    /// 1-in-N packet sampling the "routers" apply (100 for Abilene,
    /// 1000 for Geant).
    pub sample_rate: u64,
    /// Global traffic scale relative to the paper's Abilene average of
    /// 2068 pps per OD flow. 1.0 (the Abilene default) reproduces the
    /// paper's volume and sensitivity; smaller values trade sensitivity
    /// for generation speed (useful in tests) while preserving every
    /// *ratio* the experiments report.
    pub traffic_scale: f64,
    /// Relative per-bin rate noise.
    pub rate_noise: f64,
    /// Whether addresses are anonymized before analysis (Abilene masks the
    /// low 11 bits; Geant does not).
    pub anonymize: bool,
}

impl DatasetConfig {
    /// Paper-average unsampled OD-flow intensity, packets per second.
    pub const PAPER_MEAN_PPS: f64 = 2068.0;
    /// Seconds per bin.
    pub const BIN_SECS: u64 = 300;

    /// Abilene-like defaults: 1 week, 1/100 sampling, anonymized,
    /// full paper-scale traffic (~6200 sampled packets per cell).
    pub fn abilene(seed: u64) -> Self {
        DatasetConfig {
            seed,
            n_bins: BINS_PER_WEEK,
            sample_rate: 100,
            traffic_scale: 1.0,
            rate_noise: 0.01,
            anonymize: true,
        }
    }

    /// Geant-like defaults: 1 week, 1/1000 sampling, not anonymized.
    ///
    /// Geant carries roughly twice Abilene's traffic but samples 10x
    /// coarser, so its per-cell sampled counts come out lower — as in the
    /// real archives.
    pub fn geant(seed: u64) -> Self {
        DatasetConfig {
            seed,
            n_bins: BINS_PER_WEEK,
            sample_rate: 1000,
            traffic_scale: 2.0,
            rate_noise: 0.01,
            anonymize: false,
        }
    }

    /// Shrinks or extends to `weeks` weeks.
    pub fn weeks(mut self, weeks: usize) -> Self {
        self.n_bins = BINS_PER_WEEK * weeks;
        self
    }

    /// Overrides the bin count directly (tests use small counts).
    pub fn bins(mut self, n: usize) -> Self {
        self.n_bins = n;
        self
    }

    /// Mean sampled packets per bin per OD flow under this configuration.
    pub fn mean_sampled_packets_per_bin(&self) -> f64 {
        Self::PAPER_MEAN_PPS * Self::BIN_SECS as f64 * self.traffic_scale / self.sample_rate as f64
    }

    /// Converts an unsampled intensity in packets/second into expected
    /// sampled packets per bin under this configuration.
    pub fn pps_to_sampled_per_bin(&self, pps: f64) -> f64 {
        pps * Self::BIN_SECS as f64 * self.traffic_scale / self.sample_rate as f64
    }
}

/// The static parts of a synthetic network: topology, address plan,
/// rate model, service mixtures and host pools.
#[derive(Debug, Clone)]
pub struct SyntheticNetwork {
    topology: Topology,
    plan: AddressPlan,
    indexer: OdIndexer,
    rates: RateModel,
    mixes: Vec<ServiceMix>,
    eph_pools: Vec<EphemeralPool>,
    pool: HostPool,
    config: DatasetConfig,
}

impl SyntheticNetwork {
    /// Builds the network model for a topology and configuration.
    pub fn new(topology: Topology, config: DatasetConfig) -> Self {
        let plan = AddressPlan::standard(&topology);
        let indexer = OdIndexer::new(topology.n_pops());
        let rates = RateModel::new(
            &topology,
            config.seed,
            config.mean_sampled_packets_per_bin(),
            config.rate_noise,
        );
        let mixes: Vec<ServiceMix> = (0..indexer.n_flows())
            .map(|f| ServiceMix::seeded(mix64(config.seed ^ (f as u64) << 17)))
            .collect();
        // Ephemeral pools sized by each flow's mean rate so baseline port
        // entropy is stable per flow (see services::EphemeralPool).
        let eph_pools: Vec<EphemeralPool> = (0..indexer.n_flows())
            .map(|f| {
                EphemeralPool::for_rate(
                    rates.base_rate(f),
                    mix64(config.seed ^ 0x9_0000 ^ (f as u64) << 23),
                )
            })
            .collect();
        SyntheticNetwork {
            topology,
            plan,
            indexer,
            rates,
            mixes,
            eph_pools,
            pool: HostPool::standard(),
            config,
        }
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The address plan (needed to build injection packets).
    pub fn plan(&self) -> &AddressPlan {
        &self.plan
    }

    /// The OD indexer.
    pub fn indexer(&self) -> &OdIndexer {
        &self.indexer
    }

    /// The dataset configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// The rate model.
    pub fn rates(&self) -> &RateModel {
        &self.rates
    }

    /// Deterministically regenerates the **baseline** accumulator of one
    /// cell (no anomaly events applied).
    pub fn baseline_cell(&self, bin: usize, flow: usize) -> BinAccumulator {
        let mut acc = BinAccumulator::new();
        self.visit_cell_packets(bin, flow, &[], |pkt| acc.add_packet(&pkt));
        acc
    }

    /// Deterministically regenerates every sampled packet of one cell —
    /// baseline traffic (scaled down by covering outage events) plus the
    /// packets of every covering injected anomaly, in generation order.
    ///
    /// This is the replay source for the streaming ingest stage: the same
    /// seeded draws produce the same packets the batch generator folded
    /// into its accumulators, so offering these packets to a
    /// `StreamingGridBuilder` reconstructs the batch grid cell exactly.
    pub fn cell_packets(
        &self,
        bin: usize,
        flow: usize,
        events: &[InjectedAnomaly],
    ) -> Vec<PacketHeader> {
        let mut out = Vec::new();
        self.visit_cell_packets(bin, flow, events, |pkt| out.push(pkt));
        out
    }

    /// Generates one cell's packets, feeding each to `sink`. Baseline and
    /// anomaly draws use the same per-cell seeded streams regardless of
    /// whether the caller accumulates or collects, which is what keeps
    /// batch generation and streaming replay bit-identical.
    fn visit_cell_packets(
        &self,
        bin: usize,
        flow: usize,
        events: &[InjectedAnomaly],
        mut sink: impl FnMut(PacketHeader),
    ) {
        // Outages multiply the baseline rate down.
        let mut factor = 1.0;
        for ev in events {
            if ev.event.label == AnomalyLabel::Outage && ev.covers(bin, flow) {
                factor *= OUTAGE_RATE_FACTOR;
            }
        }
        // SmallRng (xoshiro) keeps the per-packet draw loop cheap; streams
        // are still fully determined by the cell seed.
        let mut rng = SmallRng::seed_from_u64(cell_seed(self.config.seed, bin, flow));
        let rate = self.rates.noisy_rate(flow, bin, &mut rng) * factor;
        let n = poisson(&mut rng, rate);
        let od = self.indexer.pair(flow);
        let timestamp = bin as u64 * DatasetConfig::BIN_SECS;
        let day_weight = self.rates.day_weight(bin);
        for _ in 0..n {
            let mut pkt = baseline_packet(
                &self.plan,
                &self.pool,
                &self.mixes[flow],
                &self.eph_pools[flow],
                day_weight,
                od.origin,
                od.dest,
                timestamp,
                &mut rng,
            );
            if self.config.anonymize {
                pkt = pkt.anonymized();
            }
            sink(pkt);
        }
        // Packet-injecting events.
        for ev in events {
            if ev.event.label == AnomalyLabel::Outage || !ev.covers(bin, flow) {
                continue;
            }
            let mut rng = SmallRng::seed_from_u64(mix64(
                ev.event.seed ^ cell_seed(self.config.seed, bin, flow),
            ));
            let n = poisson(&mut rng, ev.event.packets_per_cell);
            for mut pkt in
                anomaly_packets(ev.event.label, &self.plan, od, n, timestamp, ev.event.seed)
            {
                if self.config.anonymize {
                    pkt = pkt.anonymized();
                }
                sink(pkt);
            }
        }
    }

    /// Summarizes a cell with optional anomaly events applied.
    fn cell_summary(&self, bin: usize, flow: usize, events: &[InjectedAnomaly]) -> BinSummary {
        let mut acc = BinAccumulator::new();
        self.visit_cell_packets(bin, flow, events, |pkt| acc.add_packet(&pkt));
        acc.summarize()
    }
}

/// A fully generated dataset: tensor + volumes + ground truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The network model that produced (and can regenerate) the data.
    pub net: SyntheticNetwork,
    /// The entropy tensor `H(t, p, 4)`.
    pub tensor: EntropyTensor,
    /// Byte and packet count matrices.
    pub volumes: VolumeMatrix,
    /// Ground-truth injected anomalies, in injection order.
    pub truth: Vec<InjectedAnomaly>,
}

impl Dataset {
    /// Generates a dataset with the given injected events.
    ///
    /// Uses scoped threads to parallelize over bins; output is identical
    /// regardless of thread count because every cell draws from its own
    /// seeded stream.
    pub fn generate(
        topology: Topology,
        config: DatasetConfig,
        events: Vec<AnomalyEvent>,
    ) -> Dataset {
        let net = SyntheticNetwork::new(topology, config);
        let truth: Vec<InjectedAnomaly> = events
            .into_iter()
            .map(|event| InjectedAnomaly { event })
            .collect();

        let n_bins = net.config.n_bins;
        let n_flows = net.indexer.n_flows();
        let mut builder = TensorBuilder::new(n_bins, n_flows);

        // Parallel fan-out over bins: each worker fills disjoint rows.
        let n_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(1, 16);
        let mut rows: Vec<Vec<BinSummary>> = vec![Vec::new(); n_bins];
        {
            let net_ref = &net;
            let truth_ref = &truth;
            let chunks: Vec<(usize, &mut [Vec<BinSummary>])> = {
                let mut out = Vec::new();
                let mut rest: &mut [Vec<BinSummary>] = &mut rows;
                let chunk = n_bins.div_ceil(n_threads).max(1);
                let mut start = 0usize;
                while !rest.is_empty() {
                    let take = chunk.min(rest.len());
                    let (head, tail) = rest.split_at_mut(take);
                    out.push((start, head));
                    start += take;
                    rest = tail;
                }
                out
            };
            std::thread::scope(|s| {
                for (start, chunk) in chunks {
                    s.spawn(move || {
                        for (offset, row) in chunk.iter_mut().enumerate() {
                            let bin = start + offset;
                            *row = (0..n_flows)
                                .map(|flow| net_ref.cell_summary(bin, flow, truth_ref))
                                .collect();
                        }
                    });
                }
            });
        }
        for (bin, row) in rows.iter().enumerate() {
            for (flow, summary) in row.iter().enumerate() {
                builder.set(bin, flow, summary);
            }
        }
        let (tensor, volumes) = builder.finish();
        Dataset {
            net,
            tensor,
            volumes,
            truth,
        }
    }

    /// Convenience: a clean dataset (no injected anomalies).
    pub fn clean(topology: Topology, config: DatasetConfig) -> Dataset {
        Dataset::generate(topology, config, Vec::new())
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.tensor.n_bins()
    }

    /// Number of OD flows.
    pub fn n_flows(&self) -> usize {
        self.tensor.n_flows()
    }

    /// What-if injection: superimpose `packets[i]` onto cell
    /// `(bin, flows[i])` and return the modified unfolded entropy row plus
    /// the modified byte/packet volume rows — without mutating the
    /// dataset. This is the Figure 5/6 inner loop.
    pub fn whatif_rows(&self, bin: usize, injections: &[(usize, &[PacketHeader])]) -> WhatIfRow {
        let mut entropy_row = self.tensor.unfolded_row(bin);
        let mut bytes_row = self.volumes.bytes().row(bin).to_vec();
        let mut packets_row = self.volumes.packets().row(bin).to_vec();
        let p = self.n_flows();
        for &(flow, packets) in injections {
            let mut acc = self.net.baseline_cell(bin, flow);
            for pkt in packets {
                let pkt = if self.net.config.anonymize {
                    pkt.anonymized()
                } else {
                    *pkt
                };
                acc.add_packet(&pkt);
            }
            let s = acc.summarize();
            for (k, e) in s.entropy.iter().enumerate() {
                entropy_row[k * p + flow] = *e;
            }
            bytes_row[flow] = s.bytes as f64;
            packets_row[flow] = s.packets as f64;
        }
        WhatIfRow {
            entropy: entropy_row,
            bytes: bytes_row,
            packets: packets_row,
        }
    }
}

/// The modified rows produced by a what-if injection.
#[derive(Debug, Clone)]
pub struct WhatIfRow {
    /// Unfolded entropy row (length `4p`).
    pub entropy: Vec<f64>,
    /// Byte counts per flow.
    pub bytes: Vec<f64>,
    /// Packet counts per flow.
    pub packets: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use entromine_net::packet::Feature;

    fn tiny_config(seed: u64) -> DatasetConfig {
        DatasetConfig {
            seed,
            n_bins: 24,
            sample_rate: 100,
            traffic_scale: 0.02, // ~124 packets per cell
            rate_noise: 0.05,
            anonymize: false,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::clean(Topology::line(3), tiny_config(5));
        let b = Dataset::clean(Topology::line(3), tiny_config(5));
        assert_eq!(a.tensor.unfold().as_slice(), b.tensor.unfold().as_slice());
        assert_eq!(
            a.volumes.packets().as_slice(),
            b.volumes.packets().as_slice()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::clean(Topology::line(3), tiny_config(5));
        let b = Dataset::clean(Topology::line(3), tiny_config(6));
        assert_ne!(
            a.volumes.packets().as_slice(),
            b.volumes.packets().as_slice()
        );
    }

    #[test]
    fn volumes_match_expected_scale() {
        // The configured mean is only realized once the diurnal basis
        // integrates out, so average over one full day; a fraction of a
        // day can sit arbitrarily close to the diurnal peak or trough
        // depending on the seeded phase. The 25% tolerance absorbs the
        // weekly pattern (<= 16% over a one-day window) plus noise.
        let cfg = tiny_config(7).bins(crate::eigenflow::BINS_PER_DAY);
        let expected = cfg.mean_sampled_packets_per_bin();
        let d = Dataset::clean(Topology::line(3), cfg);
        let total: f64 = d.volumes.packets().as_slice().iter().sum();
        let cells = (d.n_bins() * d.n_flows()) as f64;
        let mean = total / cells;
        assert!(
            (mean - expected).abs() / expected < 0.25,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn entropy_cells_are_populated() {
        let d = Dataset::clean(Topology::line(3), tiny_config(8));
        let mut nonzero = 0;
        for bin in 0..d.n_bins() {
            for flow in 0..d.n_flows() {
                if d.tensor.get(bin, flow, Feature::SrcIp) > 0.0 {
                    nonzero += 1;
                }
            }
        }
        let total = d.n_bins() * d.n_flows();
        // Heavy-tailed flow sizes leave the smallest flows near-empty at
        // this tiny test scale (as real sampled NetFlow does); the bulk of
        // cells must still carry entropy.
        assert!(
            nonzero * 2 > total,
            "only {nonzero}/{total} cells have entropy"
        );
    }

    #[test]
    fn baseline_cell_matches_generated_dataset() {
        // Regenerating a cell must agree with what generation stored.
        let d = Dataset::clean(Topology::line(3), tiny_config(9));
        let acc = d.net.baseline_cell(5, 2);
        let s = acc.summarize();
        assert_eq!(d.volumes.packets()[(5, 2)], s.packets as f64);
        assert_eq!(d.volumes.bytes()[(5, 2)], s.bytes as f64);
        for f in entromine_entropy::FEATURES {
            assert!(
                (d.tensor.get(5, 2, f) - s.entropy[f.index()]).abs() < 1e-12,
                "feature {f} mismatch"
            );
        }
    }

    #[test]
    fn cell_packets_replay_reconstructs_generated_cells() {
        // The streaming replay source must produce exactly the packets the
        // batch generator accumulated — anomaly events included.
        let ev = AnomalyEvent {
            label: AnomalyLabel::PortScan,
            start_bin: 6,
            duration: 2,
            flows: vec![1],
            packets_per_cell: 80.0,
            seed: 21,
        };
        let d = Dataset::generate(Topology::line(3), tiny_config(11), vec![ev]);
        for (bin, flow) in [(6, 1), (7, 1), (5, 1), (6, 0)] {
            let packets = d.net.cell_packets(bin, flow, &d.truth);
            let mut acc = BinAccumulator::new();
            for p in &packets {
                acc.add_packet(p);
            }
            let s = acc.summarize();
            assert_eq!(d.volumes.packets()[(bin, flow)], s.packets as f64);
            assert_eq!(d.volumes.bytes()[(bin, flow)], s.bytes as f64);
            for f in entromine_entropy::FEATURES {
                assert_eq!(
                    d.tensor.get(bin, flow, f),
                    s.entropy[f.index()],
                    "cell ({bin},{flow}) feature {f} diverged on replay"
                );
            }
            // Every replayed packet is stamped inside its bin.
            let t0 = bin as u64 * DatasetConfig::BIN_SECS;
            assert!(packets
                .iter()
                .all(|p| p.timestamp >= t0 && p.timestamp < t0 + DatasetConfig::BIN_SECS));
        }
    }

    #[test]
    fn outage_suppresses_traffic() {
        let ev = AnomalyEvent {
            label: AnomalyLabel::Outage,
            start_bin: 10,
            duration: 2,
            flows: vec![4],
            packets_per_cell: 0.0,
            seed: 77,
        };
        let with = Dataset::generate(Topology::line(3), tiny_config(10), vec![ev]);
        let without = Dataset::clean(Topology::line(3), tiny_config(10));
        let hit = with.volumes.packets()[(10, 4)];
        let normal = without.volumes.packets()[(10, 4)];
        assert!(
            hit < normal * 0.3,
            "outage failed to suppress: {hit} vs {normal}"
        );
        // Other cells untouched.
        assert_eq!(
            with.volumes.packets()[(9, 4)],
            without.volumes.packets()[(9, 4)]
        );
        assert_eq!(
            with.volumes.packets()[(10, 3)],
            without.volumes.packets()[(10, 3)]
        );
    }

    #[test]
    fn packet_injection_shifts_entropy() {
        let ev = AnomalyEvent {
            label: AnomalyLabel::PortScan,
            start_bin: 12,
            duration: 1,
            flows: vec![7],
            packets_per_cell: 400.0,
            seed: 3,
        };
        let with = Dataset::generate(Topology::line(3), tiny_config(11), vec![ev]);
        let without = Dataset::clean(Topology::line(3), tiny_config(11));
        // Port scan: dstPort entropy rises, dstIP entropy falls.
        let dport_with = with.tensor.get(12, 7, Feature::DstPort);
        let dport_without = without.tensor.get(12, 7, Feature::DstPort);
        assert!(
            dport_with > dport_without + 0.5,
            "dstPort entropy: {dport_without} -> {dport_with}"
        );
        let dip_with = with.tensor.get(12, 7, Feature::DstIp);
        let dip_without = without.tensor.get(12, 7, Feature::DstIp);
        assert!(
            dip_with < dip_without,
            "dstIP entropy: {dip_without} -> {dip_with}"
        );
    }

    #[test]
    fn whatif_matches_real_injection() {
        // whatif_rows on a clean dataset must equal actually generating the
        // dataset with the anomaly, for the affected row.
        let cfg = tiny_config(12);
        let clean = Dataset::clean(Topology::line(3), cfg.clone());
        let od = clean.net.indexer().pair(5);
        let packets = anomaly_packets(
            AnomalyLabel::NetworkScan,
            clean.net.plan(),
            od,
            300,
            8 * DatasetConfig::BIN_SECS,
            21,
        );
        let what = clean.whatif_rows(8, &[(5, &packets)]);

        // Direct construction of the same cell.
        let mut acc = clean.net.baseline_cell(8, 5);
        acc.add_packets(&packets);
        let s = acc.summarize();
        let p = clean.n_flows();
        for (k, e) in s.entropy.iter().enumerate() {
            assert!((what.entropy[k * p + 5] - e).abs() < 1e-12);
        }
        assert_eq!(what.packets[5], s.packets as f64);
        // Unaffected flows keep their stored values.
        assert_eq!(what.packets[4], clean.volumes.packets()[(8, 4)]);
    }

    #[test]
    fn anonymization_flag_masks_addresses() {
        let mut cfg = tiny_config(13);
        cfg.anonymize = true;
        let d = Dataset::clean(Topology::line(3), cfg);
        // Anonymized entropy is lower than raw entropy for srcIP (fewer
        // distinct values after masking).
        let mut cfg_raw = tiny_config(13);
        cfg_raw.anonymize = false;
        let raw = Dataset::clean(Topology::line(3), cfg_raw);
        let mut strictly_lower = 0;
        let mut total = 0;
        for bin in 0..d.n_bins() {
            for flow in 0..d.n_flows() {
                let a = d.tensor.get(bin, flow, Feature::SrcIp);
                let r = raw.tensor.get(bin, flow, Feature::SrcIp);
                // Masking is a function of the address, so it can only
                // merge histogram bins: entropy never increases.
                assert!(
                    a <= r + 1e-12,
                    "anonymization increased entropy at ({bin},{flow}): {r} -> {a}"
                );
                if a < r - 1e-9 {
                    strictly_lower += 1;
                }
                total += 1;
            }
        }
        // Hosts share /21 groups, so coarsening must actually bite in the
        // bulk of cells.
        assert!(
            strictly_lower * 2 > total,
            "anonymization reduced entropy in only {strictly_lower}/{total} cells"
        );
    }
}
