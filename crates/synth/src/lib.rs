//! Synthetic network-wide traffic with ground-truth anomalies.
//!
//! The paper evaluates on three weeks each of sampled flow data from
//! Abilene (1/100 sampling, 11-bit address anonymization) and Geant
//! (1/1000 sampling). Those archives are not available, so this crate
//! rebuilds their *statistical shape* — the properties the diagnosis
//! methods actually rely on — with known ground truth:
//!
//! * [`eigenflow`] — OD-flow traffic rates driven by a small shared set of
//!   diurnal/weekly temporal patterns plus noise. Lakhina et al.
//!   (SIGMETRICS 2004) showed real OD ensembles are low-rank in exactly
//!   this way; it is the premise of the subspace method.
//! * [`distr`] — the samplers the generator needs (Poisson counts, alias
//!   tables for O(1) categorical draws, Zipf popularity weights).
//! * [`services`] — per-OD service mixtures (web, DNS, mail, bulk
//!   transfer, peer-to-peer) with client/server host pools; these produce
//!   the baseline feature distributions whose entropy the detector models.
//! * [`anomaly`] — generators for every anomaly class of the paper's
//!   Table 1 (alpha flows, single/multi-source DOS, flash crowd, port
//!   scan, network scan, outage, point-to-multipoint, worm), each
//!   reproducing the qualitative feature-distribution effects the table
//!   describes, plus ground-truth labels.
//! * [`traces`] — the three labelled attack traces of Table 4
//!   (single-source DOS at 3.47e5 pps, multi-source DDOS at 2.75e4 pps,
//!   worm scan at 141 pps), with the paper's §6.3.1 extraction, 11-bit
//!   masking, address remapping, thinning, and k-way source splitting.
//! * [`dataset`] — end-to-end dataset construction: an Abilene- or
//!   Geant-shaped network, weeks of 5-minute bins, an injection schedule,
//!   and the resulting entropy tensor + volume matrices + ground truth.
//!
//! Everything is deterministic given a `u64` seed; per-cell RNG streams
//! make single (bin, flow) cells reproducible in isolation, which is what
//! the injection experiments (Figures 5 and 6) rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod dataset;
pub mod distr;
pub mod eigenflow;
pub mod schedule;
pub mod services;
pub mod traces;

pub use anomaly::{AnomalyEvent, AnomalyLabel, InjectedAnomaly};
pub use dataset::{Dataset, DatasetConfig, SyntheticNetwork};
pub use schedule::Schedule;
pub use traces::{AttackTrace, TraceKind};

/// SplitMix64 finalizer: turns (seed, bin, flow) into an independent RNG
/// stream seed. Used everywhere a cell or event needs its own
/// deterministic randomness.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a per-cell seed from a dataset seed and cell coordinates.
pub fn cell_seed(seed: u64, bin: usize, flow: usize) -> u64 {
    mix64(seed ^ mix64((bin as u64) << 32 | flow as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_spreads_nearby_inputs() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        // Hamming distance should be substantial.
        let d = (a ^ b).count_ones();
        assert!(d > 10, "poor diffusion: {d} bits");
    }

    #[test]
    fn cell_seeds_are_distinct_and_stable() {
        let s1 = cell_seed(42, 0, 0);
        let s2 = cell_seed(42, 0, 1);
        let s3 = cell_seed(42, 1, 0);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_ne!(s2, s3);
        assert_eq!(cell_seed(42, 0, 0), s1);
        assert_ne!(cell_seed(43, 0, 0), s1);
    }
}
