//! Low-rank temporal structure for OD-flow rates.
//!
//! Lakhina et al. (*Structural Analysis of Network Traffic Flows*,
//! SIGMETRICS 2004) showed that the ensemble of OD-flow timeseries of a
//! backbone is dominated by a handful of shared temporal patterns
//! ("eigenflows"): strong diurnal cycles, a weekly rhythm, and noise. That
//! observation is the entire justification for the subspace method, so the
//! generator reproduces it directly: every OD flow's rate is a positive
//! mixture of a small shared basis, scaled by a gravity-model base rate.

use crate::distr::standard_normal;
use crate::mix64;
use entromine_net::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bins per day at the paper's 5-minute bin width.
pub const BINS_PER_DAY: usize = 288;
/// Bins per week.
pub const BINS_PER_WEEK: usize = 7 * BINS_PER_DAY;

/// The shared temporal basis: deterministic diurnal/weekly shapes.
///
/// `basis(j, bin)` returns the value of pattern `j` at a bin; patterns are
/// bounded in `[-1, 1]`.
#[derive(Debug, Clone)]
pub struct TemporalBasis {
    phases: Vec<f64>,
}

impl TemporalBasis {
    /// Number of basis patterns (the effective rank of the ensemble).
    ///
    /// Kept small on purpose: entropy responds logarithmically to rate, so
    /// each rate pattern leaks quadratic harmonics into the entropy
    /// timeseries; rank 3 keeps linear + leaked structure within the
    /// paper's m = 10 normal subspace.
    pub const RANK: usize = 3;

    /// Builds the basis with seeded random phases.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(mix64(seed ^ 0xE16E));
        let phases = (0..Self::RANK)
            .map(|_| rng.random::<f64>() * std::f64::consts::TAU)
            .collect();
        TemporalBasis { phases }
    }

    /// Value of pattern `j` at `bin`.
    ///
    /// Pattern 0 is the diurnal cycle, 1 its second harmonic, 2 the weekly
    /// cycle; all are smooth, as real eigenflows are.
    pub fn value(&self, j: usize, bin: usize) -> f64 {
        debug_assert!(j < Self::RANK);
        let day = bin as f64 / BINS_PER_DAY as f64 * std::f64::consts::TAU;
        let week = bin as f64 / BINS_PER_WEEK as f64 * std::f64::consts::TAU;
        match j {
            0 => (day + self.phases[0]).sin(),
            1 => (2.0 * day + self.phases[1]).sin(),
            2 => (week + self.phases[2]).sin(),
            _ => 0.0,
        }
    }
}

/// Per-OD-flow rate model: gravity base rates mixed with the shared basis.
#[derive(Debug, Clone)]
pub struct RateModel {
    basis: TemporalBasis,
    /// Base rate (mean sampled packets per bin) per OD flow.
    base: Vec<f64>,
    /// Mixing weights: `weights[flow][j]` scales basis pattern `j`.
    weights: Vec<[f64; TemporalBasis::RANK]>,
    /// Std of multiplicative per-bin noise.
    noise: f64,
}

impl RateModel {
    /// Builds rates for every OD pair of `topology`.
    ///
    /// * `mean_packets_per_bin` — network-average sampled packets per bin
    ///   per OD flow (the paper's Abilene average was 2068 pps unsampled =
    ///   6204 sampled packets per 5-minute bin at 1/100 sampling; the
    ///   dataset layer scales this down for tractability and documents it).
    /// * `noise` — relative per-bin noise (0.05 = 5%).
    pub fn new(topology: &Topology, seed: u64, mean_packets_per_bin: f64, noise: f64) -> Self {
        let p = topology.n_pops();
        let mut rng = StdRng::seed_from_u64(mix64(seed ^ 0x8A7E));
        // Gravity model with *lognormal* PoP masses: real OD-flow size
        // distributions span orders of magnitude (a few elephant flows
        // dominate the mean; the median flow is far smaller). This tail is
        // load-bearing for the paper's results — anomalies that are a
        // rounding error in an elephant flow reshape a mouse flow's
        // distributions completely, which is what makes split DDOS attacks
        // *easier* to detect across more flows (Figure 6).
        let masses: Vec<f64> = (0..p)
            .map(|_| (0.9 * standard_normal(&mut rng)).exp())
            .collect();
        let mass_total: f64 = masses.iter().sum();
        let n_flows = p * p;
        // Gravity shares sum to 1 over all OD pairs, so scaling by
        // n_flows * mean sets the network-wide average to `mean`; a floor
        // at 1% of the mean keeps every flow observable under sampling
        // (below that, 1/100 NetFlow sampling sees almost nothing — as in
        // the real archives), after which the ensemble is rescaled to
        // restore the target average.
        let mut base: Vec<f64> = Vec::with_capacity(n_flows);
        for o in 0..p {
            for d in 0..p {
                let gravity = masses[o] * masses[d] / (mass_total * mass_total);
                base.push(gravity * n_flows as f64 * mean_packets_per_bin);
            }
        }
        let floor = 0.02 * mean_packets_per_bin;
        for b in &mut base {
            *b = b.max(floor);
        }
        let avg: f64 = base.iter().sum::<f64>() / n_flows as f64;
        if avg > 0.0 {
            let rescale = mean_packets_per_bin / avg;
            for b in &mut base {
                *b = (*b * rescale).max(floor);
            }
        }
        let weights = (0..n_flows)
            .map(|_| {
                let mut w = [0.0; TemporalBasis::RANK];
                // Diurnal dominates; the harmonic and weekly patterns are
                // weaker. Amplitudes are calibrated so the entropy
                // timeseries' normal subspace captures ~85% of variance at
                // m = 10 on default configurations, matching the knee the
                // paper reports for real Abilene data (§4.1).
                w[0] = 0.25 + 0.15 * rng.random::<f64>();
                w[1] = 0.08 + 0.08 * rng.random::<f64>();
                w[2] = 0.08 + 0.08 * rng.random::<f64>();
                w
            })
            .collect();
        RateModel {
            basis: TemporalBasis::new(seed),
            base,
            weights,
            noise,
        }
    }

    /// Number of OD flows.
    pub fn n_flows(&self) -> usize {
        self.base.len()
    }

    /// Deterministic (noise-free) rate of `flow` at `bin`, in sampled
    /// packets per bin. Always nonnegative.
    pub fn mean_rate(&self, flow: usize, bin: usize) -> f64 {
        let w = &self.weights[flow];
        let mut modulation = 1.0;
        for (j, &wj) in w.iter().enumerate() {
            modulation += wj * self.basis.value(j, bin);
        }
        (self.base[flow] * modulation).max(0.0)
    }

    /// Rate with multiplicative noise drawn from the provided RNG.
    pub fn noisy_rate<R: Rng + ?Sized>(&self, flow: usize, bin: usize, rng: &mut R) -> f64 {
        let m = self.mean_rate(flow, bin);
        (m * (1.0 + self.noise * standard_normal(rng))).max(0.0)
    }

    /// The base (time-average) rate of a flow.
    pub fn base_rate(&self, flow: usize) -> f64 {
        self.base[flow]
    }

    /// Time-of-day weight in `[0, 1]` shared network-wide: 1 at the
    /// diurnal peak, 0 in the trough. Drives the day/night service-mix
    /// interpolation of the baseline generator.
    pub fn day_weight(&self, bin: usize) -> f64 {
        0.5 + 0.5 * self.basis.value(0, bin)
    }

    /// Network-wide average base rate (should be ~`mean_packets_per_bin`).
    pub fn average_base_rate(&self) -> f64 {
        self.base.iter().sum::<f64>() / self.base.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entromine_net::Topology;

    #[test]
    fn basis_is_bounded_and_smooth() {
        let b = TemporalBasis::new(1);
        for j in 0..TemporalBasis::RANK {
            let mut prev = b.value(j, 0);
            for bin in 1..BINS_PER_WEEK {
                let v = b.value(j, bin);
                assert!((-1.0..=1.0).contains(&v), "pattern {j} out of range");
                assert!(
                    (v - prev).abs() < 0.2,
                    "pattern {j} jumps at bin {bin}: {prev} -> {v}"
                );
                prev = v;
            }
        }
    }

    #[test]
    fn diurnal_pattern_has_daily_period() {
        let b = TemporalBasis::new(2);
        for bin in 0..BINS_PER_DAY {
            let a = b.value(0, bin);
            let c = b.value(0, bin + BINS_PER_DAY);
            assert!((a - c).abs() < 1e-9, "not periodic at {bin}");
        }
    }

    #[test]
    fn mean_rate_nonnegative_and_scaled() {
        let topo = Topology::abilene();
        let m = RateModel::new(&topo, 7, 600.0, 0.05);
        assert_eq!(m.n_flows(), 121);
        let avg = m.average_base_rate();
        // The small-flow floor nudges the rescaled average slightly.
        assert!(
            (avg - 600.0).abs() / 600.0 < 0.05,
            "average base rate {avg} too far from 600"
        );
        for flow in 0..m.n_flows() {
            for bin in (0..BINS_PER_WEEK).step_by(37) {
                assert!(m.mean_rate(flow, bin) >= 0.0);
            }
        }
    }

    #[test]
    fn rates_vary_over_the_day() {
        let topo = Topology::abilene();
        let m = RateModel::new(&topo, 8, 600.0, 0.0);
        let flow = 13;
        let rates: Vec<f64> = (0..BINS_PER_DAY).map(|b| m.mean_rate(flow, b)).collect();
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min.max(1e-9) > 1.2,
            "no diurnal variation: {min}..{max}"
        );
    }

    #[test]
    fn flows_are_heterogeneous() {
        let topo = Topology::abilene();
        let m = RateModel::new(&topo, 9, 600.0, 0.0);
        let b0 = m.base_rate(0);
        let distinct = (1..m.n_flows()).any(|f| (m.base_rate(f) - b0).abs() > 1.0);
        assert!(distinct, "all flows identical");
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = Topology::abilene();
        let a = RateModel::new(&topo, 10, 600.0, 0.05);
        let b = RateModel::new(&topo, 10, 600.0, 0.05);
        for flow in [0, 17, 99] {
            for bin in [0, 100, 2000] {
                assert_eq!(a.mean_rate(flow, bin), b.mean_rate(flow, bin));
            }
        }
    }

    #[test]
    fn noisy_rate_centers_on_mean() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let topo = Topology::line(3);
        let m = RateModel::new(&topo, 11, 500.0, 0.1);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mean_rate = m.mean_rate(4, 10);
        let avg: f64 = (0..n).map(|_| m.noisy_rate(4, 10, &mut rng)).sum::<f64>() / n as f64;
        assert!(
            (avg - mean_rate).abs() / mean_rate.max(1e-9) < 0.02,
            "avg {avg} vs mean {mean_rate}"
        );
    }
}
