//! Randomized injection schedules.
//!
//! The paper's Abilene archive contained 444 detected anomalies whose
//! manually inspected label mix is Table 3. [`Schedule`] generates a
//! ground-truth event list with a configurable label mix (defaulting to
//! proportions echoing Table 3), random placement over bins and OD flows,
//! and intensities drawn relative to each target flow's own rate — so a
//! dataset carries a realistic population of anomalies for the detection
//! and classification experiments.

use crate::anomaly::{AnomalyEvent, AnomalyLabel};
use crate::dataset::SyntheticNetwork;
use crate::mix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a random injection schedule.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// RNG seed (independent of the dataset seed).
    pub seed: u64,
    /// How many events of each label to inject.
    pub counts: Vec<(AnomalyLabel, usize)>,
    /// Bins at the start/end of the window kept free of injections (the
    /// models need clean context around events).
    pub margin_bins: usize,
    /// Intensity range as a fraction of the target flow's base rate.
    pub intensity: (f64, f64),
}

impl Schedule {
    /// A mix echoing the label proportions of the paper's Table 3, scaled
    /// to about `total` events.
    ///
    /// Table 3 found (volume + entropy): Alpha 221, DOS 27, Flash Crowd 9,
    /// Port Scan 30, Network Scan 28, Outage 15, Point-Multipoint 7,
    /// Unknown 64 — out of 401 true anomalies.
    pub fn paper_mix(seed: u64, total: usize) -> Self {
        let raw: [(AnomalyLabel, f64); 9] = [
            (AnomalyLabel::AlphaFlow, 221.0),
            (AnomalyLabel::DosSingle, 18.0),
            (AnomalyLabel::DosMulti, 9.0),
            (AnomalyLabel::FlashCrowd, 9.0),
            (AnomalyLabel::PortScan, 30.0),
            (AnomalyLabel::NetworkScan, 28.0),
            (AnomalyLabel::Outage, 15.0),
            (AnomalyLabel::PointToMultipoint, 7.0),
            (AnomalyLabel::Unknown, 64.0),
        ];
        let sum: f64 = raw.iter().map(|(_, c)| c).sum();
        let counts = raw
            .iter()
            .map(|&(label, c)| (label, ((c / sum * total as f64).round() as usize).max(1)))
            .collect();
        Schedule {
            seed,
            counts,
            margin_bins: 12,
            // Deliberately straddles the detectors' sensitivity floors:
            // real anomaly populations contain many events only one method
            // (or neither) can see, which is what makes the paper's
            // volume/entropy sets largely disjoint (Figure 4, Table 2).
            intensity: (0.05, 0.55),
        }
    }

    /// A small uniform mix: `per_label` events of every packet label plus
    /// outages.
    pub fn uniform(seed: u64, per_label: usize) -> Self {
        let mut counts: Vec<(AnomalyLabel, usize)> = AnomalyLabel::PACKET_LABELS
            .iter()
            .map(|&l| (l, per_label))
            .collect();
        counts.push((AnomalyLabel::Outage, per_label));
        Schedule {
            seed,
            counts,
            margin_bins: 12,
            intensity: (0.15, 0.9),
        }
    }

    /// Total number of events the schedule will produce.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|(_, c)| c).sum()
    }

    /// Materializes the schedule against a network model.
    ///
    /// Events get distinct bins (so ground-truth attribution is
    /// unambiguous), random target flows, and intensities relative to the
    /// target flow's base rate. Multi-source DOS events span 2–5 origin
    /// PoPs toward one destination. Returns fewer events than requested if
    /// the window is too small to place them all distinctly.
    pub fn materialize(&self, net: &SyntheticNetwork) -> Vec<AnomalyEvent> {
        let mut rng = StdRng::seed_from_u64(mix64(self.seed ^ 0x5C4ED));
        let n_bins = net.config().n_bins;
        let n_flows = net.indexer().n_flows();
        let p = net.indexer().n_pops();

        let lo = self.margin_bins.min(n_bins.saturating_sub(1));
        let hi = n_bins.saturating_sub(self.margin_bins).max(lo + 1);
        let mut free_bins: Vec<usize> = (lo..hi).collect();
        let mut events = Vec::new();

        for &(label, count) in &self.counts {
            for _ in 0..count {
                // Longest events first would pack better, but distinct
                // single bins dominate; keep it simple and stop when full.
                let duration = match label {
                    AnomalyLabel::Outage => 2 + rng.random_range(0..3),
                    AnomalyLabel::AlphaFlow => 1 + rng.random_range(0..3),
                    _ => 1,
                };
                if free_bins.len() < duration + 1 {
                    return events;
                }
                // Pick a start bin such that start..start+duration are all
                // still free and contiguous in the free list.
                let start_idx = rng.random_range(0..free_bins.len().saturating_sub(duration));
                let start = free_bins[start_idx];
                let contiguous = (0..duration).all(|i| {
                    free_bins
                        .get(start_idx + i)
                        .is_some_and(|&b| b == start + i)
                });
                if !contiguous {
                    continue; // try the next event; density is low enough
                }
                free_bins.drain(start_idx..start_idx + duration);

                // Targets.
                let (flows, reference_rate) = match label {
                    AnomalyLabel::DosMulti => {
                        let k = 2 + rng.random_range(0..4).min(p.saturating_sub(1));
                        let dest = rng.random_range(0..p);
                        let mut origins: Vec<usize> = (0..p).filter(|&o| o != dest).collect();
                        // Partial shuffle for the first k origins.
                        for i in 0..k.min(origins.len()) {
                            let j = rng.random_range(i..origins.len());
                            origins.swap(i, j);
                        }
                        let flows: Vec<usize> = origins
                            .into_iter()
                            .take(k)
                            .map(|o| net.indexer().index(entromine_net::OdPair::new(o, dest)))
                            .collect();
                        let avg = flows.iter().map(|&f| net.rates().base_rate(f)).sum::<f64>()
                            / flows.len() as f64;
                        (flows, avg)
                    }
                    AnomalyLabel::Outage => {
                        // An outage hits every flow originating at a PoP.
                        let pop = rng.random_range(0..p);
                        let flows: Vec<usize> = (0..p)
                            .map(|d| net.indexer().index(entromine_net::OdPair::new(pop, d)))
                            .collect();
                        (flows, 0.0)
                    }
                    _ => {
                        let flow = rng.random_range(0..n_flows);
                        (vec![flow], net.rates().base_rate(flow))
                    }
                };

                let frac =
                    self.intensity.0 + (self.intensity.1 - self.intensity.0) * rng.random::<f64>();
                // Two intensity regimes: alpha flows scale with the pipe
                // they fill, but attack/scan rates are *attacker-chosen
                // absolutes* — a scanner probes at the same packet rate
                // whether it crosses an elephant flow or a mouse flow.
                // (Sizing scans relative to elephant flows would turn them
                // into volume anomalies, which they are not; Table 3.)
                let network_mean = net.config().mean_sampled_packets_per_bin();
                let packets_per_cell = match label {
                    AnomalyLabel::Outage => 0.0,
                    AnomalyLabel::AlphaFlow => reference_rate * (0.25 + 2.0 * frac),
                    // DOS/flash events span small to near-saturating.
                    AnomalyLabel::DosSingle | AnomalyLabel::DosMulti | AnomalyLabel::FlashCrowd => {
                        network_mean * (0.05 + 1.2 * frac)
                    }
                    // Scans, worms, point-to-multipoint, unknowns: low
                    // absolute volume, log-uniform over ~[0.5%, 25%] of the
                    // network-mean flow.
                    _ => {
                        let lo: f64 = 0.005;
                        let hi: f64 = 0.25;
                        let log_draw = lo * (hi / lo).powf(frac / self.intensity.1.max(1e-9));
                        network_mean * log_draw
                    }
                };
                let _ = reference_rate;

                events.push(AnomalyEvent {
                    label,
                    start_bin: start,
                    duration,
                    flows,
                    packets_per_cell,
                    seed: rng.random::<u64>(),
                });
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;
    use entromine_net::Topology;

    fn net() -> SyntheticNetwork {
        let cfg = DatasetConfig {
            seed: 1,
            n_bins: 400,
            sample_rate: 100,
            traffic_scale: 0.05,
            rate_noise: 0.02,
            anonymize: false,
        };
        SyntheticNetwork::new(Topology::abilene(), cfg)
    }

    #[test]
    fn paper_mix_proportions() {
        let s = Schedule::paper_mix(1, 100);
        let total = s.total();
        assert!((90..=115).contains(&total), "total {total}");
        let alpha = s
            .counts
            .iter()
            .find(|(l, _)| *l == AnomalyLabel::AlphaFlow)
            .unwrap()
            .1;
        assert!(alpha > total / 3, "alpha flows dominate Table 3");
    }

    #[test]
    fn materialize_respects_margins_and_distinct_bins() {
        let n = net();
        let s = Schedule::uniform(7, 3);
        let events = s.materialize(&n);
        assert!(!events.is_empty());
        let mut used = std::collections::HashSet::new();
        for ev in &events {
            assert!(ev.start_bin >= s.margin_bins);
            assert!(ev.start_bin + ev.duration <= 400 - s.margin_bins);
            for b in ev.start_bin..ev.start_bin + ev.duration {
                assert!(used.insert(b), "bin {b} reused");
            }
        }
    }

    #[test]
    fn ddos_spans_multiple_origins_to_one_dest() {
        let n = net();
        let s = Schedule::uniform(3, 5);
        let events = s.materialize(&n);
        let ddos: Vec<_> = events
            .iter()
            .filter(|e| e.label == AnomalyLabel::DosMulti)
            .collect();
        assert!(!ddos.is_empty());
        for ev in ddos {
            assert!(ev.flows.len() >= 2);
            let dests: std::collections::HashSet<usize> =
                ev.flows.iter().map(|&f| n.indexer().pair(f).dest).collect();
            assert_eq!(dests.len(), 1, "DDOS must share one destination");
            let origins: std::collections::HashSet<usize> = ev
                .flows
                .iter()
                .map(|&f| n.indexer().pair(f).origin)
                .collect();
            assert_eq!(origins.len(), ev.flows.len(), "distinct origins");
        }
    }

    #[test]
    fn outage_covers_a_pop_and_injects_nothing() {
        let n = net();
        let s = Schedule::uniform(9, 2);
        let events = s.materialize(&n);
        let outage = events
            .iter()
            .find(|e| e.label == AnomalyLabel::Outage)
            .expect("schedule contains outages");
        assert_eq!(outage.packets_per_cell, 0.0);
        assert_eq!(outage.flows.len(), 11, "all flows from one origin PoP");
        assert!(outage.duration >= 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let n = net();
        let a = Schedule::uniform(42, 2).materialize(&n);
        let b = Schedule::uniform(42, 2).materialize(&n);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.start_bin, y.start_bin);
            assert_eq!(x.flows, y.flows);
            assert_eq!(x.seed, y.seed);
        }
    }

    #[test]
    fn intensities_follow_their_regimes() {
        let n = net();
        let mean = n.config().mean_sampled_packets_per_bin();
        let events = Schedule::uniform(5, 4).materialize(&n);
        for ev in &events {
            match ev.label {
                AnomalyLabel::Outage => assert_eq!(ev.packets_per_cell, 0.0),
                // Pipe-filling events scale with the target flow.
                AnomalyLabel::AlphaFlow => {
                    let base = n.rates().base_rate(ev.flows[0]);
                    assert!(
                        ev.packets_per_cell <= base * 2.5 + 1.0,
                        "alpha: {} pkts vs base {base}",
                        ev.packets_per_cell
                    );
                    assert!(ev.packets_per_cell > 0.0);
                }
                // DOS-family events are absolute, up to ~1.3x network mean.
                AnomalyLabel::DosSingle | AnomalyLabel::DosMulti | AnomalyLabel::FlashCrowd => {
                    assert!(ev.packets_per_cell <= mean * 1.5);
                    assert!(ev.packets_per_cell > 0.0);
                }
                // Scans and friends are low-volume absolutes.
                _ => {
                    assert!(
                        ev.packets_per_cell <= mean * 0.26,
                        "{}: {} pkts vs mean {mean}",
                        ev.label,
                        ev.packets_per_cell
                    );
                    assert!(ev.packets_per_cell > 0.0);
                }
            }
        }
    }

    #[test]
    fn window_too_small_returns_partial_schedule() {
        let cfg = DatasetConfig {
            seed: 1,
            n_bins: 30,
            sample_rate: 100,
            traffic_scale: 0.05,
            rate_noise: 0.02,
            anonymize: false,
        };
        let n = SyntheticNetwork::new(Topology::line(2), cfg);
        let s = Schedule::uniform(1, 50); // far more events than bins
        let events = s.materialize(&n);
        assert!(events.len() < 50 * 10);
        // All placed events must still be inside the window.
        for ev in &events {
            assert!(ev.start_bin + ev.duration <= 30);
        }
    }
}
