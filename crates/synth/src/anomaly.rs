//! Anomaly generators for every class in the paper's Table 1.
//!
//! Each generator produces packets whose feature distributions reproduce
//! the qualitative effects Table 1 describes:
//!
//! | Label              | Effect reproduced here                                   |
//! |--------------------|----------------------------------------------------------|
//! | Alpha flow         | one src → one dst, fixed ports, large packets            |
//! | DOS (single/multi) | dst concentrated on victim; src spoofed (dispersed)      |
//! | Flash crowd        | many legitimate srcs → one dst, one well-known port      |
//! | Port scan          | one src → one dst, dst ports swept                       |
//! | Network scan       | one src → many dsts, one dst port, src port incrementing |
//! | Outage             | traffic drop (rate multiplier, no packets)               |
//! | Point-multipoint   | one src → many dsts, many dst ports                      |
//! | Worm               | few srcs → many dsts on one vulnerable port              |
//!
//! The `Unknown` label marks deliberately ambiguous events (two anomalies
//! co-occurring, NAT-striped alpha flows) mirroring the paper's unknown
//! category — structures the manual inspection could not name but
//! clustering later could.

use crate::mix64;
use entromine_net::{AddressPlan, Ipv4, OdPair, PacketHeader};
use rand::rngs::{SmallRng, StdRng};
use rand::{Rng, SeedableRng};
use std::fmt;

/// The anomaly taxonomy of Table 1 (plus `Unknown`, §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AnomalyLabel {
    /// Unusually large point-to-point flow (bandwidth measurement etc.).
    AlphaFlow,
    /// Single-source denial of service attack.
    DosSingle,
    /// Distributed denial of service attack.
    DosMulti,
    /// Flash crowd: legitimate demand surge toward one destination service.
    FlashCrowd,
    /// Probes to many ports on one destination host.
    PortScan,
    /// Probes to one port across many destination addresses.
    NetworkScan,
    /// Traffic drop from equipment failure or maintenance.
    Outage,
    /// Content distribution: one source to many destinations.
    PointToMultipoint,
    /// Worm scanning for vulnerable hosts (special case of network scan).
    Worm,
    /// Deliberately ambiguous structure (co-occurrence, NAT striping).
    Unknown,
}

impl AnomalyLabel {
    /// Every label that injects packets (everything except [`Outage`],
    /// which removes traffic instead).
    ///
    /// [`Outage`]: AnomalyLabel::Outage
    pub const PACKET_LABELS: [AnomalyLabel; 9] = [
        AnomalyLabel::AlphaFlow,
        AnomalyLabel::DosSingle,
        AnomalyLabel::DosMulti,
        AnomalyLabel::FlashCrowd,
        AnomalyLabel::PortScan,
        AnomalyLabel::NetworkScan,
        AnomalyLabel::PointToMultipoint,
        AnomalyLabel::Worm,
        AnomalyLabel::Unknown,
    ];

    /// Short name as used in the paper's tables.
    pub const fn name(self) -> &'static str {
        match self {
            AnomalyLabel::AlphaFlow => "Alpha",
            AnomalyLabel::DosSingle => "DOS",
            AnomalyLabel::DosMulti => "DDOS",
            AnomalyLabel::FlashCrowd => "Flash Crowd",
            AnomalyLabel::PortScan => "Port Scan",
            AnomalyLabel::NetworkScan => "Network Scan",
            AnomalyLabel::Outage => "Outage",
            AnomalyLabel::PointToMultipoint => "Point-Multipoint",
            AnomalyLabel::Worm => "Worm",
            AnomalyLabel::Unknown => "Unknown",
        }
    }
}

impl fmt::Display for AnomalyLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Specification of one anomaly to inject.
#[derive(Debug, Clone)]
pub struct AnomalyEvent {
    /// What kind of anomaly.
    pub label: AnomalyLabel,
    /// First affected bin.
    pub start_bin: usize,
    /// Number of consecutive bins affected.
    pub duration: usize,
    /// The OD flow(s) carrying the anomaly (dense indices). Multi-flow
    /// events (DDOS across origins, outages) list several.
    pub flows: Vec<usize>,
    /// Anomaly packets per affected (bin, flow) cell, in *sampled* packet
    /// units (i.e. after the network's 1/N packet sampling).
    pub packets_per_cell: f64,
    /// Per-event RNG seed.
    pub seed: u64,
}

/// Ground truth attached to a generated dataset.
#[derive(Debug, Clone)]
pub struct InjectedAnomaly {
    /// The event that was injected.
    pub event: AnomalyEvent,
}

impl InjectedAnomaly {
    /// `true` if the anomaly covers the given cell.
    pub fn covers(&self, bin: usize, flow: usize) -> bool {
        bin >= self.event.start_bin
            && bin < self.event.start_bin + self.event.duration
            && self.event.flows.contains(&flow)
    }

    /// All bins the anomaly covers.
    pub fn bins(&self) -> std::ops::Range<usize> {
        self.event.start_bin..self.event.start_bin + self.event.duration
    }
}

/// For outages: the multiplicative rate factor applied to covered cells.
pub const OUTAGE_RATE_FACTOR: f64 = 0.05;

/// Generates the anomaly packets for one covered cell.
///
/// `od` locates the victim/attacker address pools; `n` is the (already
/// Poisson-sampled) packet count; `timestamp` stamps all packets (bin
/// granularity is all the analysis sees).
///
/// [`AnomalyLabel::Outage`] produces no packets (it suppresses baseline
/// traffic via [`OUTAGE_RATE_FACTOR`] instead).
pub fn anomaly_packets(
    label: AnomalyLabel,
    plan: &AddressPlan,
    od: OdPair,
    n: u64,
    timestamp: u64,
    event_seed: u64,
) -> Vec<PacketHeader> {
    // Event-stable choices (victim host, scanner address, target port) must
    // not vary from cell to cell of the same event.
    let mut stable = StdRng::seed_from_u64(mix64(event_seed ^ 0xA11CE));
    // Per-cell stream for the per-packet draws (SmallRng: this loop can run
    // hundreds of millions of times per dataset).
    let mut rng = SmallRng::seed_from_u64(mix64(event_seed ^ mix64(timestamp ^ 0xFACE)));

    let mut packets = Vec::with_capacity(n as usize);
    match label {
        AnomalyLabel::Outage => {}

        AnomalyLabel::AlphaFlow => {
            // High-rate point-to-point flow on a measurement port.
            let src = plan.host(od.origin, 7000 + stable.random_range(0..100));
            let dst = plan.host(od.dest, 7000 + stable.random_range(0..100));
            let sport: u16 = stable.random_range(32768..61000);
            for _ in 0..n {
                packets.push(PacketHeader::tcp(src, sport, dst, 5001, 1500, timestamp));
            }
        }

        AnomalyLabel::DosSingle => {
            // One attacker, one victim, small packets; source port varies
            // (raw socket floods), destination port fixed on the service.
            let src = plan.host(od.origin, 9000 + stable.random_range(0..500));
            let victim = plan.host(od.dest, 100 + stable.random_range(0..48));
            let dport = *[80u16, 443, 6667].get(stable.random_range(0..3)).unwrap();
            for _ in 0..n {
                let sport: u16 = rng.random_range(1024..=65535);
                packets.push(PacketHeader::tcp(src, sport, victim, dport, 40, timestamp));
            }
        }

        AnomalyLabel::DosMulti => {
            // Spoofed sources spread across the origin PoP's whole block —
            // "the spoofing of source addresses works in our favor, as it
            // disturbs the feature distributions".
            let victim = plan.host(od.dest, 100 + stable.random_range(0..48));
            let dport = *[80u16, 443, 53].get(stable.random_range(0..3)).unwrap();
            let block = plan.pop_block(od.origin);
            for _ in 0..n {
                let spoofed = Ipv4(block.first().0 + rng.random_range(0..block.size()) as u32);
                let sport: u16 = rng.random_range(1024..=65535);
                packets.push(PacketHeader::tcp(
                    spoofed, sport, victim, dport, 40, timestamp,
                ));
            }
        }

        AnomalyLabel::FlashCrowd => {
            // Many *legitimate* clients (popularity-weighted would be
            // ideal; a modest distinct pool suffices) hitting one web
            // server on its well-known port.
            let server = plan.host(od.dest, 100 + stable.random_range(0..8));
            let pool = 200 + stable.random_range(0..100);
            for _ in 0..n {
                let client = plan.host(od.origin, rng.random_range(0..pool));
                let sport: u16 = rng.random_range(1024..=65535);
                packets.push(PacketHeader::tcp(client, sport, server, 80, 300, timestamp));
            }
        }

        AnomalyLabel::PortScan => {
            // One scanner sweeping ports on one target: dst address
            // concentrates, dst ports disperse (Figure 1's anomaly).
            let scanner = plan.host(od.origin, 5000 + stable.random_range(0..200));
            let target = plan.host(od.dest, 100 + stable.random_range(0..48));
            let sport: u16 = stable.random_range(30000..60000);
            let start_port = stable.random_range(1u32..20000);
            for i in 0..n {
                let dport = (start_port + i as u32 % 45000) as u16;
                packets.push(PacketHeader::tcp(
                    scanner, sport, target, dport, 40, timestamp,
                ));
            }
        }

        AnomalyLabel::NetworkScan => {
            // One scanner probing one port across many addresses; source
            // port increments per probe (§7.3.2: "such network scans often
            // use a large set of source ports, sometimes incrementing the
            // source port on each probe").
            let scanner = plan.host(od.origin, 5000 + stable.random_range(0..200));
            let dport = *[1433u16, 445, 135, 139]
                .get(stable.random_range(0..4))
                .unwrap();
            let block = plan.pop_block(od.dest);
            let sport0 = stable.random_range(1024u32..30000);
            for i in 0..n {
                let dst = Ipv4(block.first().0 + rng.random_range(0..block.size()) as u32);
                let sport = (sport0 + i as u32) as u16;
                packets.push(PacketHeader::tcp(
                    scanner,
                    sport.max(1024),
                    dst,
                    dport,
                    40,
                    timestamp,
                ));
            }
        }

        AnomalyLabel::Worm => {
            // A few infected hosts scanning the destination block on one
            // vulnerable port (MS-SQL 1433 in the paper's data).
            let infected: Vec<Ipv4> = (0..3)
                .map(|i| plan.host(od.origin, 4000 + i * 37 + stable.random_range(0..10)))
                .collect();
            let block = plan.pop_block(od.dest);
            for _ in 0..n {
                let src = infected[rng.random_range(0..infected.len())];
                let dst = Ipv4(block.first().0 + rng.random_range(0..block.size()) as u32);
                let sport: u16 = rng.random_range(1024..=65535);
                packets.push(PacketHeader::tcp(src, sport, dst, 1433, 404, timestamp));
            }
        }

        AnomalyLabel::PointToMultipoint => {
            // Content distribution: one server pushing to many clients
            // across many destination ports.
            let server = plan.host(od.origin, 100 + stable.random_range(0..48));
            let sport: u16 = stable.random_range(8000..9000);
            for _ in 0..n {
                let dst = plan.host(od.dest, rng.random_range(0..256));
                let dport: u16 = rng.random_range(1024..=65535);
                packets.push(PacketHeader::tcp(
                    server, sport, dst, dport, 1200, timestamp,
                ));
            }
        }

        AnomalyLabel::Unknown => {
            // Ambiguous by construction: a NAT-striped alpha flow (same
            // endpoints, ports re-drawn per burst) co-occurring with a
            // faint port sweep — the kind of event §6.2 could not label.
            let src = plan.host(od.origin, 6000 + stable.random_range(0..100));
            let dst = plan.host(od.dest, 6000 + stable.random_range(0..100));
            let bursts = 8.max(n / 16);
            for i in 0..n {
                let burst = i / (n / bursts).max(1);
                let mut brng = SmallRng::seed_from_u64(mix64(event_seed ^ burst));
                let sport: u16 = brng.random_range(1024..=65535);
                if i % 5 == 0 {
                    let dport = (2000 + (i as u32 * 13) % 3000) as u16;
                    packets.push(PacketHeader::tcp(src, sport, dst, dport, 40, timestamp));
                } else {
                    let dport: u16 = brng.random_range(1024..=65535);
                    packets.push(PacketHeader::tcp(src, sport, dst, dport, 1500, timestamp));
                }
            }
        }
    }
    packets
}

#[cfg(test)]
mod tests {
    use super::*;
    use entromine_entropy::BinAccumulator;
    use entromine_net::Topology;

    fn feature_entropies(label: AnomalyLabel, n: u64) -> [f64; 4] {
        let topo = Topology::abilene();
        let plan = AddressPlan::standard(&topo);
        let packets = anomaly_packets(label, &plan, OdPair::new(2, 7), n, 0, 99);
        let mut acc = BinAccumulator::new();
        acc.add_packets(&packets);
        let s = acc.summarize();
        s.entropy
    }

    #[test]
    fn packet_counts_match_request() {
        let topo = Topology::abilene();
        let plan = AddressPlan::standard(&topo);
        for label in AnomalyLabel::PACKET_LABELS {
            let packets = anomaly_packets(label, &plan, OdPair::new(0, 1), 500, 42, 7);
            assert_eq!(packets.len(), 500, "{label}");
            assert!(packets.iter().all(|p| p.timestamp == 42));
        }
        // Outage injects nothing.
        assert!(
            anomaly_packets(AnomalyLabel::Outage, &plan, OdPair::new(0, 1), 500, 0, 7).is_empty()
        );
    }

    #[test]
    fn alpha_flow_concentrates_everything() {
        let e = feature_entropies(AnomalyLabel::AlphaFlow, 1000);
        // srcIP, srcPort, dstIP, dstPort all single-valued.
        assert_eq!(e, [0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn dos_single_disperses_sports_concentrates_dst() {
        let e = feature_entropies(AnomalyLabel::DosSingle, 2000);
        assert_eq!(e[0], 0.0, "single source");
        assert!(e[1] > 8.0, "spoofed-ish source ports: {e:?}");
        assert_eq!(e[2], 0.0, "one victim");
        assert_eq!(e[3], 0.0, "one service port");
    }

    #[test]
    fn ddos_disperses_sources() {
        let e = feature_entropies(AnomalyLabel::DosMulti, 2000);
        assert!(e[0] > 8.0, "spoofed sources must disperse: {e:?}");
        assert_eq!(e[2], 0.0, "one victim");
    }

    #[test]
    fn port_scan_signature() {
        let e = feature_entropies(AnomalyLabel::PortScan, 2000);
        assert_eq!(e[0], 0.0, "one scanner");
        assert_eq!(e[1], 0.0, "fixed source port");
        assert_eq!(e[2], 0.0, "one target");
        assert!(e[3] > 9.0, "ports swept: {e:?}");
    }

    #[test]
    fn network_scan_signature() {
        let e = feature_entropies(AnomalyLabel::NetworkScan, 2000);
        assert_eq!(e[0], 0.0, "one scanner");
        assert!(e[1] > 8.0, "incrementing source ports disperse: {e:?}");
        assert!(e[2] > 8.0, "many targets: {e:?}");
        assert_eq!(e[3], 0.0, "one vulnerable port");
    }

    #[test]
    fn worm_like_network_scan_with_few_sources() {
        let e = feature_entropies(AnomalyLabel::Worm, 2000);
        assert!(e[0] > 0.5 && e[0] < 3.0, "few infected hosts: {e:?}");
        assert!(e[2] > 8.0, "many scan targets: {e:?}");
        assert_eq!(e[3], 0.0, "one vulnerable port");
    }

    #[test]
    fn flash_crowd_signature() {
        let e = feature_entropies(AnomalyLabel::FlashCrowd, 2000);
        assert!(e[0] > 5.0, "many clients: {e:?}");
        assert_eq!(e[2], 0.0, "one server");
        assert_eq!(e[3], 0.0, "one well-known port");
    }

    #[test]
    fn p2mp_signature() {
        let e = feature_entropies(AnomalyLabel::PointToMultipoint, 2000);
        assert_eq!(e[0], 0.0, "one distributor");
        assert!(e[2] > 5.0, "many receivers: {e:?}");
        assert!(e[3] > 9.0, "many destination ports: {e:?}");
    }

    #[test]
    fn packets_stay_inside_od_pools() {
        let topo = Topology::abilene();
        let plan = AddressPlan::standard(&topo);
        for label in AnomalyLabel::PACKET_LABELS {
            for p in anomaly_packets(label, &plan, OdPair::new(3, 9), 300, 0, 5) {
                assert_eq!(plan.resolve(p.src_ip), Some(3), "{label}: src off-origin");
                assert_eq!(plan.resolve(p.dst_ip), Some(9), "{label}: dst off-dest");
            }
        }
    }

    #[test]
    fn event_stable_choices_are_stable_across_bins() {
        // The same event seed must target the same victim in every bin.
        let topo = Topology::abilene();
        let plan = AddressPlan::standard(&topo);
        let a = anomaly_packets(
            AnomalyLabel::DosSingle,
            &plan,
            OdPair::new(0, 1),
            10,
            100,
            7,
        );
        let b = anomaly_packets(
            AnomalyLabel::DosSingle,
            &plan,
            OdPair::new(0, 1),
            10,
            200,
            7,
        );
        assert_eq!(a[0].dst_ip, b[0].dst_ip, "victim drifted between bins");
        assert_eq!(a[0].src_ip, b[0].src_ip, "attacker drifted between bins");
    }

    #[test]
    fn injected_anomaly_coverage() {
        let ev = InjectedAnomaly {
            event: AnomalyEvent {
                label: AnomalyLabel::PortScan,
                start_bin: 10,
                duration: 3,
                flows: vec![5, 9],
                packets_per_cell: 100.0,
                seed: 1,
            },
        };
        assert!(ev.covers(10, 5));
        assert!(ev.covers(12, 9));
        assert!(!ev.covers(13, 5));
        assert!(!ev.covers(11, 4));
        assert_eq!(ev.bins(), 10..13);
    }

    #[test]
    fn unknown_label_mixes_structures() {
        let e = feature_entropies(AnomalyLabel::Unknown, 2000);
        // Endpoints fixed, ports striped: address entropy zero, port
        // entropy positive but not maximal.
        assert_eq!(e[0], 0.0);
        assert_eq!(e[2], 0.0);
        assert!(e[1] > 1.0);
        assert!(e[3] > 1.0);
    }
}
