//! Baseline traffic composition: service mixtures and host pools.
//!
//! Each OD flow carries a mixture of application traffic. A packet's four
//! features come from:
//!
//! * which **service** it belongs to (web, DNS, mail, SSH, bulk transfer,
//!   peer-to-peer) — this fixes the well-known port on one side;
//! * whether it is a **request** (client at the origin PoP, server at the
//!   destination) or a **response** (server at the origin) — this fixes
//!   which side carries the well-known port;
//! * **host popularity** — clients and servers are drawn from per-PoP
//!   pools with Zipf popularity, giving the heavy-tailed address
//!   distributions observed in real traces.
//!
//! The result is a per-(OD flow, bin) feature distribution whose entropy
//! is stable over time with mild diurnal modulation — the "typical"
//! distribution the subspace method learns, and the backdrop against which
//! every Table 1 anomaly is injected.

use crate::distr::{zipf_weights, AliasTable};
use crate::mix64;
use entromine_net::{AddressPlan, Ipv4, PacketHeader, PopId, Protocol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A well-known application carried on the backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Service {
    /// HTTP (port 80).
    Web,
    /// HTTPS (port 443).
    WebTls,
    /// DNS over UDP (port 53).
    Dns,
    /// SMTP (port 25).
    Mail,
    /// SSH (port 22).
    Ssh,
    /// Bulk measurement / file transfer (port 5001, iperf-style — the
    /// paper's Abilene data is full of SLAC bandwidth tests).
    Bulk,
    /// Peer-to-peer: ephemeral ports on both sides.
    PeerToPeer,
}

impl Service {
    /// All services in mixture order.
    pub const ALL: [Service; 7] = [
        Service::Web,
        Service::WebTls,
        Service::Dns,
        Service::Mail,
        Service::Ssh,
        Service::Bulk,
        Service::PeerToPeer,
    ];

    /// The well-known server port (`None` for peer-to-peer).
    pub const fn server_port(self) -> Option<u16> {
        match self {
            Service::Web => Some(80),
            Service::WebTls => Some(443),
            Service::Dns => Some(53),
            Service::Mail => Some(25),
            Service::Ssh => Some(22),
            Service::Bulk => Some(5001),
            Service::PeerToPeer => None,
        }
    }

    /// Transport protocol of the service.
    pub const fn protocol(self) -> Protocol {
        match self {
            Service::Dns => Protocol::Udp,
            _ => Protocol::Tcp,
        }
    }

    /// Typical packet sizes (bytes) and their mixture weights.
    fn packet_sizes(self) -> (&'static [u32], &'static [f64]) {
        match self {
            Service::Dns => (&[80, 120, 300], &[0.6, 0.3, 0.1]),
            Service::Bulk => (&[1500, 1500, 52], &[0.8, 0.15, 0.05]),
            Service::PeerToPeer => (&[1500, 600, 80], &[0.5, 0.3, 0.2]),
            _ => (&[40, 576, 1500], &[0.4, 0.2, 0.4]),
        }
    }

    /// Fraction of the service's packets flowing client→server along the
    /// OD direction (the rest are server→client responses).
    fn request_fraction(self) -> f64 {
        match self {
            // Responses dominate web/bulk byte-wise, but packet-wise the
            // split is milder.
            Service::Web | Service::WebTls => 0.45,
            Service::Bulk => 0.5,
            Service::Dns => 0.5,
            _ => 0.5,
        }
    }
}

/// Per-PoP host pools with Zipf popularity.
#[derive(Debug, Clone)]
pub struct HostPool {
    clients_per_pop: usize,
    servers_per_pop: usize,
    client_alias: AliasTable,
    server_alias: AliasTable,
}

impl HostPool {
    /// Builds pools with the given sizes and Zipf exponents.
    pub fn new(clients_per_pop: usize, servers_per_pop: usize) -> Self {
        HostPool {
            clients_per_pop,
            servers_per_pop,
            client_alias: AliasTable::new(&zipf_weights(clients_per_pop, 0.9)),
            server_alias: AliasTable::new(&zipf_weights(servers_per_pop, 1.1)),
        }
    }

    /// Default pool sizes: 256 clients and 48 servers per PoP.
    pub fn standard() -> Self {
        HostPool::new(256, 48)
    }

    /// A client address at `pop` (popularity-weighted draw).
    pub fn client<R: Rng + ?Sized>(&self, plan: &AddressPlan, pop: PopId, rng: &mut R) -> Ipv4 {
        let idx = self.client_alias.sample(rng) as u64;
        plan.host(pop, idx)
    }

    /// A server address at `pop` (popularity-weighted draw). Server hosts
    /// occupy a disjoint index range from clients.
    pub fn server<R: Rng + ?Sized>(&self, plan: &AddressPlan, pop: PopId, rng: &mut R) -> Ipv4 {
        let idx = self.server_alias.sample(rng) as u64;
        plan.host(pop, self.clients_per_pop as u64 + idx)
    }

    /// Number of distinct client hosts per PoP.
    pub fn clients_per_pop(&self) -> usize {
        self.clients_per_pop
    }

    /// Number of distinct server hosts per PoP.
    pub fn servers_per_pop(&self) -> usize {
        self.servers_per_pop
    }
}

/// A per-OD-flow pool of ephemeral ports.
///
/// Real connections reuse one ephemeral port across all their packets, so
/// the number of *distinct* ephemeral ports in a 5-minute bin is roughly
/// the number of concurrent flows — an order of magnitude below the packet
/// count — and is stable from bin to bin. Drawing a fresh uniform port per
/// packet (the naive approach) makes port entropy track `log2(packets)`
/// and turns benign rate fluctuations into entropy noise that buries the
/// anomalies the paper detects; the pool keeps the baseline port entropy
/// smooth, as it is in real traces.
#[derive(Debug, Clone)]
pub struct EphemeralPool {
    ports: Vec<u16>,
}

impl EphemeralPool {
    /// Builds a pool sized for a flow with the given mean packets per bin
    /// (~1 port per 8 packets, clamped to a sane range).
    pub fn for_rate(mean_packets_per_bin: f64, seed: u64) -> Self {
        let size = ((mean_packets_per_bin / 8.0) as usize).clamp(16, 4096);
        let mut rng = StdRng::seed_from_u64(mix64(seed ^ 0xE9A3));
        let mut ports = Vec::with_capacity(size);
        let mut seen = std::collections::HashSet::with_capacity(size);
        while ports.len() < size {
            let p: u16 = rng.random_range(1024..=65535);
            if seen.insert(p) {
                ports.push(p);
            }
        }
        EphemeralPool { ports }
    }

    /// Number of distinct ports in the pool.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// `true` if the pool is empty (never constructible).
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }

    /// Draws one ephemeral port.
    #[inline]
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        self.ports[rng.random_range(0..self.ports.len())]
    }
}

/// The service mixture of one OD flow (weights over [`Service::ALL`]).
///
/// Two mixtures are kept — a *day* one (web/DNS-heavy) and a *night* one
/// (peer-to-peer/bulk-heavy) — and packets interpolate between them by the
/// time of day. This is what gives the baseline entropy timeseries their
/// smooth diurnal structure: traffic *composition*, not just volume,
/// follows the clock, exactly the kind of network-wide temporal pattern
/// the normal subspace is meant to capture.
#[derive(Debug, Clone)]
pub struct ServiceMix {
    day: AliasTable,
    night: AliasTable,
}

impl ServiceMix {
    /// A seeded random mixture pair with per-flow variation, mirroring how
    /// real OD flows differ in composition.
    pub fn seeded(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(mix64(seed ^ 0x5E21));
        let mut jitter = |base: f64| base * (0.5 + rng.random::<f64>());
        let day = [
            jitter(0.34), // Web
            jitter(0.28), // WebTls
            jitter(0.10), // Dns
            jitter(0.08), // Mail
            jitter(0.05), // Ssh
            jitter(0.08), // Bulk
            jitter(0.07), // PeerToPeer
        ];
        let night = [
            jitter(0.14), // Web
            jitter(0.12), // WebTls
            jitter(0.05), // Dns
            jitter(0.06), // Mail
            jitter(0.03), // Ssh
            jitter(0.22), // Bulk
            jitter(0.38), // PeerToPeer
        ];
        ServiceMix {
            day: AliasTable::new(&day),
            night: AliasTable::new(&night),
        }
    }

    /// Draws one service; `day_weight` in `[0, 1]` interpolates from the
    /// night mixture (0) to the day mixture (1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, day_weight: f64) -> Service {
        let table = if rng.random::<f64>() < day_weight.clamp(0.0, 1.0) {
            &self.day
        } else {
            &self.night
        };
        Service::ALL[table.sample(rng)]
    }
}

/// Generates one baseline packet of an OD flow.
///
/// `origin`/`dest` are the flow's PoPs; the packet's addresses respect the
/// flow direction (source at the origin PoP, destination at the
/// destination PoP) so that OD aggregation by routing assigns it back to
/// the same flow.
#[allow(clippy::too_many_arguments)] // the flow context really is nine-dimensional
pub fn baseline_packet<R: Rng + ?Sized>(
    plan: &AddressPlan,
    pool: &HostPool,
    mix: &ServiceMix,
    eph_pool: &EphemeralPool,
    day_weight: f64,
    origin: PopId,
    dest: PopId,
    timestamp: u64,
    rng: &mut R,
) -> PacketHeader {
    let service = mix.sample(rng, day_weight);
    let (sizes, size_weights) = service.packet_sizes();
    // Cheap two-point draw over the size mixture.
    let mut target = rng.random::<f64>() * size_weights.iter().sum::<f64>();
    let mut bytes = sizes[sizes.len() - 1];
    for (i, &w) in size_weights.iter().enumerate() {
        if target < w {
            bytes = sizes[i];
            break;
        }
        target -= w;
    }

    let eph = |rng: &mut R| -> u16 { eph_pool.draw(rng) };

    let is_request = rng.random::<f64>() < service.request_fraction();
    let (src_ip, dst_ip, src_port, dst_port) = match service.server_port() {
        Some(port) => {
            if is_request {
                // Client at origin → server at destination.
                (
                    pool.client(plan, origin, rng),
                    pool.server(plan, dest, rng),
                    eph(rng),
                    port,
                )
            } else {
                // Server at origin → client at destination.
                (
                    pool.server(plan, origin, rng),
                    pool.client(plan, dest, rng),
                    port,
                    eph(rng),
                )
            }
        }
        None => (
            // Peer-to-peer: clients on both sides, ephemeral both sides.
            pool.client(plan, origin, rng),
            pool.client(plan, dest, rng),
            eph(rng),
            eph(rng),
        ),
    };

    PacketHeader {
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        proto: service.protocol(),
        bytes,
        timestamp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entromine_entropy::{sample_entropy, BinAccumulator};
    use entromine_net::packet::Feature;
    use entromine_net::Topology;

    fn setup() -> (AddressPlan, HostPool, ServiceMix, EphemeralPool) {
        let topo = Topology::abilene();
        (
            AddressPlan::standard(&topo),
            HostPool::standard(),
            ServiceMix::seeded(1),
            EphemeralPool::for_rate(2000.0, 1),
        )
    }

    #[test]
    fn packets_respect_od_direction() {
        let (plan, pool, mix, eph) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let p = baseline_packet(&plan, &pool, &mix, &eph, 0.5, 3, 8, 0, &mut rng);
            assert_eq!(plan.resolve(p.src_ip), Some(3), "src not at origin");
            assert_eq!(plan.resolve(p.dst_ip), Some(8), "dst not at dest");
        }
    }

    #[test]
    fn well_known_ports_dominate() {
        let (plan, pool, mix, eph) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let known = [80u16, 443, 53, 25, 22, 5001];
        let mut hits = 0;
        let n = 2000;
        for _ in 0..n {
            let p = baseline_packet(&plan, &pool, &mix, &eph, 0.5, 0, 1, 0, &mut rng);
            if known.contains(&p.dst_port) || known.contains(&p.src_port) {
                hits += 1;
            }
        }
        // Everything except peer-to-peer has a well-known port on one side.
        assert!(hits as f64 / n as f64 > 0.6, "only {hits}/{n} well-known");
    }

    #[test]
    fn baseline_entropy_is_moderate_and_stable() {
        // The baseline must be neither fully concentrated nor fully
        // dispersed on any feature — anomalies need headroom in both
        // directions.
        let (plan, pool, mix, eph) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let mut acc = BinAccumulator::new();
        for _ in 0..2000 {
            acc.add_packet(&baseline_packet(
                &plan, &pool, &mix, &eph, 0.5, 2, 9, 0, &mut rng,
            ));
        }
        let s = acc.summarize();
        for f in [
            Feature::SrcIp,
            Feature::DstIp,
            Feature::SrcPort,
            Feature::DstPort,
        ] {
            let e = s.entropy_of(f);
            assert!(e > 1.0, "{f} entropy too low: {e}");
            assert!(e < 11.0, "{f} entropy too high: {e}");
        }
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let (plan, pool, _, _eph) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let mut hist = entromine_entropy::FeatureHistogram::new();
        for _ in 0..5000 {
            hist.add(pool.client(&plan, 0, &mut rng).0);
        }
        // Top client must carry well above the uniform share.
        let uniform_share = 1.0 / pool.clients_per_pop() as f64;
        assert!(hist.max_share() > 3.0 * uniform_share);
        // But not everything.
        assert!(hist.max_share() < 0.5);
        // Entropy is well below the uniform maximum.
        let e = sample_entropy(&hist);
        assert!(e < (pool.clients_per_pop() as f64).log2());
    }

    #[test]
    fn clients_and_servers_disjoint() {
        let (plan, pool, _, _eph) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let clients: std::collections::HashSet<Ipv4> =
            (0..2000).map(|_| pool.client(&plan, 4, &mut rng)).collect();
        let servers: std::collections::HashSet<Ipv4> =
            (0..2000).map(|_| pool.server(&plan, 4, &mut rng)).collect();
        assert!(clients.is_disjoint(&servers));
    }

    #[test]
    fn dns_is_udp_everything_else_mostly_tcp() {
        let (plan, pool, _, eph) = setup();
        let mix = ServiceMix::seeded(9);
        let mut rng = StdRng::seed_from_u64(7);
        let mut saw_udp = false;
        let mut saw_tcp = false;
        for _ in 0..2000 {
            let p = baseline_packet(&plan, &pool, &mix, &eph, 0.5, 1, 2, 0, &mut rng);
            match p.proto {
                Protocol::Udp => {
                    saw_udp = true;
                    assert!(p.src_port == 53 || p.dst_port == 53, "UDP must be DNS");
                }
                Protocol::Tcp => saw_tcp = true,
                other => panic!("unexpected protocol {other:?}"),
            }
        }
        assert!(saw_udp && saw_tcp);
    }

    #[test]
    fn different_seeds_give_different_mixes() {
        let (plan, pool, _, eph) = setup();
        let mix_a = ServiceMix::seeded(100);
        let mix_b = ServiceMix::seeded(200);
        let mut rng_a = StdRng::seed_from_u64(8);
        let mut rng_b = StdRng::seed_from_u64(8);
        let mut count_a = 0;
        let mut count_b = 0;
        for _ in 0..3000 {
            if baseline_packet(&plan, &pool, &mix_a, &eph, 0.5, 0, 1, 0, &mut rng_a).dst_port == 80
            {
                count_a += 1;
            }
            if baseline_packet(&plan, &pool, &mix_b, &eph, 0.5, 0, 1, 0, &mut rng_b).dst_port == 80
            {
                count_b += 1;
            }
        }
        assert_ne!(count_a, count_b, "mixes should differ across seeds");
    }
}
