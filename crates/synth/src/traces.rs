//! The labelled attack traces of Table 4 and the §6.3.1 injection pipeline.
//!
//! The paper injects three documented real-world anomalies into its
//! Abilene data:
//!
//! | Trace             | Intensity        | Source                      |
//! |-------------------|------------------|-----------------------------|
//! | Single-source DOS | 3.47e5 pkts/sec  | Hussain et al. (Los Nettos) |
//! | Multi-source DDOS | 2.75e4 pkts/sec  | Hussain et al. (Los Nettos) |
//! | Worm scan         | 141 pkts/sec     | Schechter et al. (Utah ISP) |
//!
//! Those traces are not redistributable, so [`AttackTrace::generate`]
//! synthesizes traces with the documented intensities and the
//! distributional structure the papers describe (spoofed vs. real sources,
//! single victim, vulnerable-port scanning), mixed with background
//! traffic. The full §6.3.1 pipeline is then reproduced mechanically:
//!
//! 1. **extraction** of the anomaly packets (by victim address for the DOS
//!    traces; by the annotated scan port for the worm);
//! 2. **11-bit masking** to match Abilene's anonymization;
//! 3. **random remapping** of addresses onto the target network's
//!    customer space ([`remap_to_network`]);
//! 4. **thinning** by 1-in-N ([`entromine_net::sample::thin_periodic`]);
//! 5. **splitting by source** into `k` groups of roughly equal traffic for
//!    the multi-OD-flow experiments ([`split_sources`]).
//!
//! The high-rate traces would materialize ~10^8 packets for a 5-minute
//! bin; [`sampled_attack_packets`] therefore provides the *fused* path
//! used by the large injection sweeps — drawing directly the packets that
//! survive thinning and 1/N flow sampling, which is statistically
//! equivalent for these i.i.d.-header floods and exact in expectation.

use crate::mix64;
use entromine_net::{AddressPlan, Ipv4, OdPair, PacketHeader};
use rand::rngs::{SmallRng, StdRng};
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Which documented trace (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Single-source bandwidth DOS attack.
    DosSingle,
    /// Multi-source distributed DOS attack.
    DosMulti,
    /// Worm scan for a vulnerable port.
    WormScan,
}

impl TraceKind {
    /// All three traces.
    pub const ALL: [TraceKind; 3] = [
        TraceKind::DosSingle,
        TraceKind::DosMulti,
        TraceKind::WormScan,
    ];

    /// The documented unthinned intensity in packets per second.
    pub const fn intensity_pps(self) -> f64 {
        match self {
            TraceKind::DosSingle => 3.47e5,
            TraceKind::DosMulti => 2.75e4,
            TraceKind::WormScan => 141.0,
        }
    }

    /// Table 4's label.
    pub const fn name(self) -> &'static str {
        match self {
            TraceKind::DosSingle => "Single-Source DOS",
            TraceKind::DosMulti => "Multi-Source DDOS",
            TraceKind::WormScan => "Worm scan",
        }
    }

    /// Number of distinct attack sources in the synthesized trace.
    const fn n_sources(self) -> usize {
        match self {
            TraceKind::DosSingle => 1,
            TraceKind::DosMulti => 64,
            TraceKind::WormScan => 18,
        }
    }

    /// The attack's destination port.
    const fn target_port(self) -> u16 {
        match self {
            TraceKind::DosSingle => 80,
            TraceKind::DosMulti => 80,
            TraceKind::WormScan => 1433, // MS-SQL, as in the paper's data
        }
    }
}

/// A synthesized labelled attack trace (attack packets plus background).
#[derive(Debug, Clone)]
pub struct AttackTrace {
    /// Which documented trace this models.
    pub kind: TraceKind,
    /// All packets, attack and background interleaved in time order.
    pub packets: Vec<PacketHeader>,
    /// The victim address (for the DOS traces) used for extraction.
    pub victim: Ipv4,
    /// Duration covered, seconds.
    pub duration_secs: u64,
    /// True attack intensity represented, packets/second (the excerpt may
    /// be materialized at a reduced rate; this field records the real one).
    pub intensity_pps: f64,
}

/// Raw address space the traces live in before remapping (a /8 unrelated
/// to the backbone's customer space).
const TRACE_SPACE: u32 = 0x18_00_00_00; // 24.0.0.0/8

impl AttackTrace {
    /// Synthesizes a trace excerpt.
    ///
    /// At most `max_packets` attack packets are materialized; if the
    /// documented intensity over `duration_secs` exceeds that, the excerpt
    /// represents the full trace at reduced rate (recorded in
    /// [`intensity_pps`](Self::intensity_pps) — extraction, masking,
    /// remapping and thinning all operate identically on the excerpt).
    pub fn generate(kind: TraceKind, seed: u64, duration_secs: u64, max_packets: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(mix64(seed ^ 0x7247CE));
        let victim = Ipv4(TRACE_SPACE | rng.random_range(0..0x00FF_FFFF));
        let sources: Vec<Ipv4> = (0..kind.n_sources())
            .map(|_| Ipv4(TRACE_SPACE | rng.random_range(0..0x00FF_FFFF)))
            .collect();

        let want = (kind.intensity_pps() * duration_secs as f64) as usize;
        let n_attack = want.min(max_packets);
        // ~10% background packets mixed in, as captured traces have.
        let n_background = n_attack / 10;

        let mut packets = Vec::with_capacity(n_attack + n_background);
        for i in 0..n_attack {
            let ts = (i as u64 * duration_secs) / n_attack.max(1) as u64;
            let src = sources[rng.random_range(0..sources.len())];
            let pkt = match kind {
                TraceKind::DosSingle | TraceKind::DosMulti => PacketHeader::tcp(
                    src,
                    rng.random_range(1024..=65535),
                    victim,
                    kind.target_port(),
                    40,
                    ts,
                ),
                TraceKind::WormScan => PacketHeader::tcp(
                    src,
                    rng.random_range(1024..=65535),
                    // Worm sweeps the whole space; extraction is by port.
                    Ipv4(TRACE_SPACE | rng.random_range(0..0x00FF_FFFF)),
                    kind.target_port(),
                    404,
                    ts,
                ),
            };
            packets.push(pkt);
        }
        for _ in 0..n_background {
            let ts = rng.random_range(0..duration_secs.max(1));
            packets.push(PacketHeader::tcp(
                Ipv4(TRACE_SPACE | rng.random_range(0..0x00FF_FFFF)),
                rng.random_range(1024..=65535),
                Ipv4(TRACE_SPACE | rng.random_range(0..0x00FF_FFFF)),
                *[80u16, 443, 53, 25].get(rng.random_range(0..4)).unwrap(),
                576,
                ts,
            ));
        }
        packets.sort_by_key(|p| p.timestamp);

        AttackTrace {
            kind,
            packets,
            victim,
            duration_secs,
            intensity_pps: kind.intensity_pps(),
        }
    }

    /// Extracts the anomaly packets from the mixed trace, as §6.3.1 does:
    /// "by identifying the victim, and extracting all packets directed to
    /// that address" for the DOS traces; by the annotated scan port for the
    /// worm ("the worm scan trace was already annotated").
    pub fn extract_attack(&self) -> Vec<PacketHeader> {
        match self.kind {
            TraceKind::DosSingle | TraceKind::DosMulti => self
                .packets
                .iter()
                .copied()
                .filter(|p| p.dst_ip == self.victim)
                .collect(),
            TraceKind::WormScan => self
                .packets
                .iter()
                .copied()
                .filter(|p| p.dst_port == self.kind.target_port())
                .collect(),
        }
    }
}

/// Remaps extracted attack packets onto a target network's address space,
/// reproducing §6.3.1: "zeroing out the last 11 bits of the address fields
/// to match the Abilene anonymization, and then applying a random mapping
/// from the addresses ... seen in the attack trace to addresses ... seen
/// in the Abilene data".
///
/// Distinct (masked) source addresses map to distinct hosts of the
/// origin PoP; destinations to hosts of the destination PoP. Ports are
/// preserved (they already carry the attack's structure). Timestamps are
/// reset to `timestamp`.
pub fn remap_to_network(
    packets: &[PacketHeader],
    plan: &AddressPlan,
    od: OdPair,
    anonymize: bool,
    timestamp: u64,
    seed: u64,
) -> Vec<PacketHeader> {
    let mut rng = StdRng::seed_from_u64(mix64(seed ^ 0x2E3A9));
    let mut src_map: HashMap<Ipv4, Ipv4> = HashMap::new();
    let mut dst_map: HashMap<Ipv4, Ipv4> = HashMap::new();
    packets
        .iter()
        .map(|p| {
            let (raw_src, raw_dst) = if anonymize {
                (p.src_ip.anonymize(), p.dst_ip.anonymize())
            } else {
                (p.src_ip, p.dst_ip)
            };
            let src = *src_map
                .entry(raw_src)
                .or_insert_with(|| plan.host(od.origin, rng.random_range(0..100_000)));
            let dst = *dst_map
                .entry(raw_dst)
                .or_insert_with(|| plan.host(od.dest, rng.random_range(0..100_000)));
            PacketHeader {
                src_ip: src,
                dst_ip: dst,
                timestamp,
                ..*p
            }
        })
        .collect()
}

/// Splits attack packets into `k` groups by source address, balancing
/// traffic across groups, as the multi-OD experiments require: "uniquely
/// mapping the set of source IPs in the attack trace onto k different
/// origin PoPs ... so that each of the k groups has roughly the same
/// amount of traffic".
pub fn split_sources(packets: &[PacketHeader], k: usize) -> Vec<Vec<PacketHeader>> {
    assert!(k >= 1, "need at least one group");
    // Count packets per source.
    let mut per_src: HashMap<Ipv4, u64> = HashMap::new();
    for p in packets {
        *per_src.entry(p.src_ip).or_insert(0) += 1;
    }
    // Greedy balancing: heaviest source to the lightest group.
    let mut sources: Vec<(Ipv4, u64)> = per_src.into_iter().collect();
    sources.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut group_of: HashMap<Ipv4, usize> = HashMap::new();
    let mut load = vec![0u64; k];
    for (src, count) in sources {
        let lightest = (0..k).min_by_key(|&g| load[g]).expect("k >= 1");
        load[lightest] += count;
        group_of.insert(src, lightest);
    }
    let mut groups = vec![Vec::new(); k];
    for p in packets {
        groups[group_of[&p.src_ip]].push(*p);
    }
    groups
}

/// Mean number of packets that survive 1-in-`thinning` trace thinning
/// followed by 1-in-`sample_rate` flow sampling, for a bin of
/// `bin_secs` seconds, with the global `traffic_scale` applied.
pub fn sampled_count(
    kind: TraceKind,
    thinning: u64,
    sample_rate: u64,
    bin_secs: u64,
    traffic_scale: f64,
) -> f64 {
    let thin = thinning.max(1) as f64;
    kind.intensity_pps() * bin_secs as f64 * traffic_scale / (thin * sample_rate as f64)
}

/// Draws `n` attack packets directly in post-sampling space, remapped into
/// the given OD pair — the fused fast path for the Figure 5/6 sweeps.
///
/// Headers follow the same models as [`AttackTrace::generate`] +
/// [`remap_to_network`]: statistically equivalent to running the
/// mechanical pipeline, without materializing 10^8 raw packets.
pub fn sampled_attack_packets(
    kind: TraceKind,
    plan: &AddressPlan,
    od: OdPair,
    n: u64,
    timestamp: u64,
    seed: u64,
) -> Vec<PacketHeader> {
    let mut stable = StdRng::seed_from_u64(mix64(seed ^ 0x57AB1E));
    let victim = plan.host(od.dest, stable.random_range(0..100_000));
    let sources: Vec<Ipv4> = (0..kind.n_sources())
        .map(|_| plan.host(od.origin, stable.random_range(0..100_000)))
        .collect();
    let mut rng = SmallRng::seed_from_u64(mix64(seed ^ mix64(timestamp ^ 0xB0B)));
    let block = plan.pop_block(od.dest);
    (0..n)
        .map(|_| {
            let src = sources[rng.random_range(0..sources.len())];
            match kind {
                TraceKind::DosSingle | TraceKind::DosMulti => PacketHeader::tcp(
                    src,
                    rng.random_range(1024..=65535),
                    victim,
                    kind.target_port(),
                    40,
                    timestamp,
                ),
                TraceKind::WormScan => PacketHeader::tcp(
                    src,
                    rng.random_range(1024..=65535),
                    Ipv4(block.first().0 + rng.random_range(0..block.size()) as u32),
                    kind.target_port(),
                    404,
                    timestamp,
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use entromine_net::sample::thin_periodic;
    use entromine_net::Topology;

    #[test]
    fn table4_intensities() {
        assert_eq!(TraceKind::DosSingle.intensity_pps(), 3.47e5);
        assert_eq!(TraceKind::DosMulti.intensity_pps(), 2.75e4);
        assert_eq!(TraceKind::WormScan.intensity_pps(), 141.0);
    }

    #[test]
    fn worm_trace_materializes_fully() {
        // 141 pps * 300 s = 42300 attack packets: small enough for the
        // full mechanical pipeline.
        let t = AttackTrace::generate(TraceKind::WormScan, 1, 300, 1_000_000);
        let attack = t.extract_attack();
        assert_eq!(attack.len(), 42_300);
        assert!(
            t.packets.len() > attack.len(),
            "background must be mixed in"
        );
    }

    #[test]
    fn dos_excerpt_caps_materialization() {
        let t = AttackTrace::generate(TraceKind::DosSingle, 2, 300, 50_000);
        assert_eq!(t.extract_attack().len(), 50_000);
        assert_eq!(t.intensity_pps, 3.47e5, "represented intensity preserved");
    }

    #[test]
    fn extraction_pulls_only_the_attack() {
        let t = AttackTrace::generate(TraceKind::DosMulti, 3, 60, 20_000);
        let attack = t.extract_attack();
        assert!(attack.iter().all(|p| p.dst_ip == t.victim));
        // Multi-source: many distinct sources.
        let srcs: std::collections::HashSet<Ipv4> = attack.iter().map(|p| p.src_ip).collect();
        assert!(srcs.len() > 30, "only {} sources", srcs.len());
    }

    #[test]
    fn remap_lands_in_od_pools_and_preserves_structure() {
        let topo = Topology::abilene();
        let plan = AddressPlan::standard(&topo);
        let t = AttackTrace::generate(TraceKind::DosMulti, 4, 60, 10_000);
        let attack = t.extract_attack();
        let remapped = remap_to_network(&attack, &plan, OdPair::new(2, 7), true, 123, 9);
        assert_eq!(remapped.len(), attack.len());
        let mut dsts = std::collections::HashSet::new();
        for p in &remapped {
            assert_eq!(plan.resolve(p.src_ip), Some(2));
            assert_eq!(plan.resolve(p.dst_ip), Some(7));
            assert_eq!(p.timestamp, 123);
            dsts.insert(p.dst_ip);
        }
        // One victim → one remapped destination.
        assert_eq!(dsts.len(), 1);
        // Source count preserved (distinct masked sources stay distinct in
        // expectation; collisions after masking are allowed but rare).
        let orig_srcs: std::collections::HashSet<Ipv4> =
            attack.iter().map(|p| p.src_ip.anonymize()).collect();
        let new_srcs: std::collections::HashSet<Ipv4> = remapped.iter().map(|p| p.src_ip).collect();
        assert!(new_srcs.len() <= orig_srcs.len());
        assert!(new_srcs.len() >= orig_srcs.len() / 2);
    }

    #[test]
    fn thinning_composes_with_pipeline() {
        let t = AttackTrace::generate(TraceKind::WormScan, 5, 300, 1_000_000);
        let attack = t.extract_attack();
        let thinned = thin_periodic(&attack, 10);
        assert_eq!(thinned.len(), attack.len().div_ceil(10));
    }

    #[test]
    fn split_sources_balances_traffic() {
        let t = AttackTrace::generate(TraceKind::DosMulti, 6, 60, 30_000);
        let attack = t.extract_attack();
        for k in [2usize, 5, 11] {
            let groups = split_sources(&attack, k);
            assert_eq!(groups.len(), k);
            let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
            let total: usize = sizes.iter().sum();
            assert_eq!(total, attack.len());
            let max = *sizes.iter().max().unwrap() as f64;
            let min = *sizes.iter().min().unwrap() as f64;
            assert!(max / min.max(1.0) < 1.6, "k={k} unbalanced: {sizes:?}");
            // Sources must not straddle groups.
            let mut seen: HashMap<Ipv4, usize> = HashMap::new();
            for (g, group) in groups.iter().enumerate() {
                for p in group {
                    if let Some(&prev) = seen.get(&p.src_ip) {
                        assert_eq!(prev, g, "source in two groups");
                    }
                    seen.insert(p.src_ip, g);
                }
            }
        }
    }

    #[test]
    fn split_single_source_cannot_balance() {
        // The single-source DOS has one source: k groups leave k-1 empty,
        // which is the expected physical behaviour (you cannot distribute
        // one attacker).
        let t = AttackTrace::generate(TraceKind::DosSingle, 7, 10, 5_000);
        let groups = split_sources(&t.extract_attack(), 3);
        let nonempty = groups.iter().filter(|g| !g.is_empty()).count();
        assert_eq!(nonempty, 1);
    }

    #[test]
    fn sampled_count_matches_table5() {
        // Table 5: single DOS at thinning 0 → 3.47e5 pps; at 1000 → 347.
        let c0 = sampled_count(TraceKind::DosSingle, 0, 100, 300, 1.0);
        let c1000 = sampled_count(TraceKind::DosSingle, 1000, 100, 300, 1.0);
        // Unthinned: 3.47e5 pps * 300 s / 100 sampling = 1.041e6 packets.
        assert!((c0 - 1.041e6).abs() < 1.0);
        // Thinned 1000x: 1041 packets (Table 5's 347 pps row / 100 * 300).
        assert!((c1000 - 1041.0).abs() < 1.0);
        assert!((c0 / c1000 - 1000.0).abs() < 1e-6);
        // Thinning factors 0 and 1 both mean "unthinned".
        assert_eq!(
            sampled_count(TraceKind::WormScan, 0, 100, 300, 1.0),
            sampled_count(TraceKind::WormScan, 1, 100, 300, 1.0)
        );
    }

    #[test]
    fn fused_path_matches_mechanical_distributions() {
        // The fused sampler and the mechanical pipeline must agree on the
        // structural signature: single victim, spoofed sources, one port.
        let topo = Topology::abilene();
        let plan = AddressPlan::standard(&topo);
        let od = OdPair::new(1, 8);
        let fused = sampled_attack_packets(TraceKind::DosMulti, &plan, od, 5000, 0, 11);
        let srcs: std::collections::HashSet<Ipv4> = fused.iter().map(|p| p.src_ip).collect();
        let dsts: std::collections::HashSet<Ipv4> = fused.iter().map(|p| p.dst_ip).collect();
        assert_eq!(dsts.len(), 1);
        assert!(srcs.len() > 30);
        assert!(fused.iter().all(|p| p.dst_port == 80));
        for p in &fused {
            assert_eq!(plan.resolve(p.src_ip), Some(1));
            assert_eq!(plan.resolve(p.dst_ip), Some(8));
        }
    }

    #[test]
    fn worm_fused_path_sweeps_destinations() {
        let topo = Topology::abilene();
        let plan = AddressPlan::standard(&topo);
        let pkts =
            sampled_attack_packets(TraceKind::WormScan, &plan, OdPair::new(0, 5), 3000, 0, 13);
        let dsts: std::collections::HashSet<Ipv4> = pkts.iter().map(|p| p.dst_ip).collect();
        assert!(
            dsts.len() > 1000,
            "worm must sweep addresses: {}",
            dsts.len()
        );
        assert!(pkts.iter().all(|p| p.dst_port == 1433));
    }
}
