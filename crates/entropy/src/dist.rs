//! The per-feature distribution store abstraction.
//!
//! Everything above a feature histogram — [`BinAccumulator`], the
//! combining engine, the serial and sharded grid builders, the monitor's
//! ingest plane — only ever *offers* weighted values, *merges* sibling
//! stores, asks for *size hints* to pre-size the next bin, and finally
//! collapses the store to an *entropy* number. [`DistributionAccumulator`]
//! names exactly that surface, so the whole ingest plane is generic over
//! how a distribution is represented:
//!
//! * [`FeatureHistogram`](crate::FeatureHistogram) — the **exact tier**:
//!   the flat open-addressing table holding every distinct value. This is
//!   the default type parameter everywhere, and the generic plane
//!   monomorphizes to exactly the code that existed before the trait:
//!   the exact tier's outputs are bit-identical to the concrete plane's.
//! * [`SketchHistogram`](crate::SketchHistogram) — the **bounded-memory
//!   tier**: hash-space level sampling over the same flat table, holding
//!   at most a budgeted number of surviving keys and estimating entropy
//!   by Horvitz–Thompson inverse-probability scaling, with a documented
//!   error bound (see [`crate::sketch`]).
//!
//! Code never picks a tier by naming the type: builders take the store's
//! [`Params`](DistributionAccumulator::Params) and the
//! [`AccumulatorPolicy`](crate::AccumulatorPolicy) facade selects a tier
//! at run time.
//!
//! # Laws
//!
//! Implementations must keep the ingest plane's order-independence
//! contract: the observable state (and therefore [`entropy`],
//! [`size_hint`], [`retained_entries`]) must be a **pure function of the
//! offered multiset** `{(value, weight)}` for a fixed `Params` — never of
//! offer order, batch segmentation, merge shape, or capacity history.
//! This is what lets serial, batched, and sharded builders of the same
//! tier emit bit-identical rows.
//!
//! [`entropy`]: DistributionAccumulator::entropy
//! [`size_hint`]: DistributionAccumulator::size_hint
//! [`retained_entries`]: DistributionAccumulator::retained_entries

use crate::hist::FeatureHistogram;
use crate::metrics::sample_entropy;
use std::fmt::Debug;

/// A per-feature distribution store the ingest plane can drive: offer
/// weighted values, merge, report size hints, finalize to entropy.
///
/// See the module docs for the role this trait plays and the
/// order-independence laws implementations must uphold.
pub trait DistributionAccumulator: Clone + Debug + Default + PartialEq + Send + Sync {
    /// Per-store construction parameters, carried by the grid builders
    /// and applied to every cell they open: `()` for the exact tier, the
    /// key budget for the sketched tier.
    type Params: Clone + Debug + Default + PartialEq + Send + Sync;

    /// An empty store configured by `params`, pre-sized to absorb about
    /// `capacity_hint` distinct values without reallocating (0 = allocate
    /// nothing; the builders feed this from the previous bin's observed
    /// cardinality).
    fn with_params(params: &Self::Params, capacity_hint: usize) -> Self;

    /// Records one observation of `value`.
    #[inline]
    fn offer(&mut self, value: u32) {
        self.offer_n(value, 1);
    }

    /// Records `weight` observations of `value` (a combined run or an
    /// aggregated flow record). A zero weight is a no-op.
    fn offer_n(&mut self, value: u32, weight: u64);

    /// Merges another store of the same tier and parameters into this
    /// one, as if its offers had been replayed here.
    fn merge_from(&mut self, other: &Self);

    /// Total number of observations `S` offered so far. Exact in every
    /// tier (the sketched tier counts totals outside the sampled table).
    fn total(&self) -> u64;

    /// The sizing feedback for the next bin's [`with_params`] call: how
    /// many distinct values this store is currently tracking.
    ///
    /// [`with_params`]: Self::with_params
    fn size_hint(&self) -> usize;

    /// Collapses the store to sample entropy in bits — exact for the
    /// exact tier, the documented-error estimate for the sketched tier.
    fn entropy(&self) -> f64;

    /// Self-reported standard error of [`entropy`](Self::entropy)
    /// (0 for exact tiers).
    fn entropy_stderr(&self) -> f64 {
        0.0
    }

    /// Bytes of heap currently owned by the store — the number the
    /// memory-tier ceilings and benches account against.
    fn heap_bytes(&self) -> usize;

    /// The `(value, count)` entries the store physically retains, in
    /// unspecified order. For the exact tier this is every entry; for a
    /// sketched tier, the surviving sampled keys with their exact counts.
    fn retained_entries(&self) -> Vec<(u32, u64)>;

    /// The inverse inclusion probability of a retained entry: multiply a
    /// retained count by this to estimate its population mass (1.0 for
    /// exact tiers). The prefix rollup trees are built on this scaling.
    fn scale(&self) -> f64 {
        1.0
    }
}

impl DistributionAccumulator for FeatureHistogram {
    type Params = ();

    #[inline]
    fn with_params(_params: &(), capacity_hint: usize) -> Self {
        FeatureHistogram::with_capacity(capacity_hint)
    }

    #[inline]
    fn offer(&mut self, value: u32) {
        self.add(value);
    }

    #[inline]
    fn offer_n(&mut self, value: u32, weight: u64) {
        self.add_n(value, weight);
    }

    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }

    #[inline]
    fn total(&self) -> u64 {
        FeatureHistogram::total(self)
    }

    #[inline]
    fn size_hint(&self) -> usize {
        self.distinct()
    }

    fn entropy(&self) -> f64 {
        sample_entropy(self)
    }

    fn heap_bytes(&self) -> usize {
        FeatureHistogram::heap_bytes(self)
    }

    fn retained_entries(&self) -> Vec<(u32, u64)> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a store through the trait surface only, so both tiers can
    /// share the check.
    fn offer_some<D: DistributionAccumulator>(params: &D::Params) -> D {
        let mut d = D::with_params(params, 8);
        d.offer(5);
        d.offer_n(5, 2);
        d.offer_n(9, 4);
        d.offer_n(3, 0); // no-op
        let mut other = D::with_params(params, 0);
        other.offer(1);
        d.merge_from(&other);
        d
    }

    #[test]
    fn exact_tier_matches_inherent_api() {
        let via_trait: FeatureHistogram = offer_some(&());
        let mut direct = FeatureHistogram::with_capacity(8);
        direct.add(5);
        direct.add_n(5, 2);
        direct.add_n(9, 4);
        direct.add(1);
        assert_eq!(via_trait, direct);
        assert_eq!(via_trait.total(), 8);
        assert_eq!(DistributionAccumulator::size_hint(&via_trait), 3);
        assert_eq!(
            DistributionAccumulator::entropy(&via_trait),
            sample_entropy(&direct)
        );
        assert_eq!(via_trait.entropy_stderr(), 0.0);
        assert_eq!(via_trait.scale(), 1.0);
        let mut entries = via_trait.retained_entries();
        entries.sort_unstable();
        assert_eq!(entries, vec![(1, 1), (5, 3), (9, 4)]);
    }

    #[test]
    fn exact_tier_heap_accounting_matches_columns() {
        let h: FeatureHistogram = (0..100u32).collect();
        // 12 bytes per slot, power-of-two slot count, load ≤ 1/2.
        assert_eq!(DistributionAccumulator::heap_bytes(&h) % 12, 0);
        assert!(DistributionAccumulator::heap_bytes(&h) >= 12 * 2 * 100);
        assert_eq!(
            DistributionAccumulator::heap_bytes(&FeatureHistogram::new()),
            0
        );
    }
}
