//! Run-time tier selection for the ingest accumulation plane.
//!
//! The grid builders are compile-time generic over their distribution
//! store ([`DistributionAccumulator`]); deployments, however, pick a tier
//! from configuration. [`AccumulatorPolicy`] is that configuration value,
//! and [`TierGridBuilder`] / [`TierShardedBuilder`] are the enum facades
//! that erase the type parameter: each variant holds one monomorphized
//! builder, so the exact tier keeps executing exactly the pre-trait code
//! while callers (the monitor, the bench harness, operator tooling)
//! switch tiers with a value instead of a type.
//!
//! ```
//! use entromine_entropy::{AccumulatorPolicy, StreamConfig};
//! use entromine_net::{Ipv4, PacketHeader};
//!
//! let policy = AccumulatorPolicy::Sketched { budget: 1024 };
//! let mut plane = policy.streaming(StreamConfig::new(2)).unwrap();
//! plane
//!     .offer_packet(0, &PacketHeader::tcp(Ipv4(1), 10, Ipv4(2), 80, 100, 12))
//!     .unwrap();
//! let sealed = plane.advance_watermark(300);
//! assert_eq!(sealed[0].summaries[0].packets, 1);
//! ```

use crate::shard::ShardedGridBuilder;
use crate::sketch::{SketchHistogram, SketchParams, DEFAULT_BUDGET};
use crate::stream::{FinalizedBin, StreamConfig, StreamError, StreamingGridBuilder};
use entromine_net::flow::FlowRecord;
use entromine_net::packet::PacketHeader;

/// Which distribution-store tier an ingest plane should run.
///
/// `Exact` is the default and reproduces the paper's measurement exactly;
/// `Sketched` bounds every cell's memory by a key budget at the price of
/// the documented entropy error bound (see [`crate::sketch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccumulatorPolicy {
    /// Exact flat histograms ([`FeatureHistogram`](crate::FeatureHistogram)):
    /// unbounded distinct-key memory, zero entropy error.
    #[default]
    Exact,
    /// Bounded-memory level-sampling sketches
    /// ([`SketchHistogram`](crate::SketchHistogram)): at most `budget`
    /// retained keys per feature store, entropy within the documented
    /// bound of exact.
    Sketched {
        /// Maximum retained distinct keys per feature store. Zero is
        /// clamped to one; [`DEFAULT_BUDGET`] is the conventional choice.
        budget: usize,
    },
}

impl AccumulatorPolicy {
    /// The sketched tier at its default budget.
    pub fn sketched_default() -> Self {
        AccumulatorPolicy::Sketched {
            budget: DEFAULT_BUDGET,
        }
    }

    /// Opens a serial streaming plane of this tier.
    pub fn streaming(self, config: StreamConfig) -> Result<TierGridBuilder, StreamError> {
        Ok(match self {
            AccumulatorPolicy::Exact => TierGridBuilder::Exact(StreamingGridBuilder::new(config)?),
            AccumulatorPolicy::Sketched { budget } => TierGridBuilder::Sketched(
                StreamingGridBuilder::with_params(config, SketchParams { budget })?,
            ),
        })
    }

    /// Opens a sharded ingest plane of this tier.
    pub fn sharded(
        self,
        config: StreamConfig,
        shards: usize,
    ) -> Result<TierShardedBuilder, StreamError> {
        Ok(match self {
            AccumulatorPolicy::Exact => {
                TierShardedBuilder::Exact(ShardedGridBuilder::new(config, shards)?)
            }
            AccumulatorPolicy::Sketched { budget } => TierShardedBuilder::Sketched(
                ShardedGridBuilder::with_params(config, shards, SketchParams { budget })?,
            ),
        })
    }
}

/// Forwards the builder surface shared by both tiers of a facade enum.
macro_rules! delegate {
    ($self:ident, $b:ident => $e:expr) => {
        match $self {
            Self::Exact($b) => $e,
            Self::Sketched($b) => $e,
        }
    };
}

/// A serial streaming plane whose tier was chosen at run time by an
/// [`AccumulatorPolicy`]. Every method forwards to the underlying
/// [`StreamingGridBuilder`] monomorphization.
#[derive(Debug, Clone)]
pub enum TierGridBuilder {
    /// The exact tier.
    Exact(StreamingGridBuilder),
    /// The bounded-memory sketched tier.
    Sketched(StreamingGridBuilder<SketchHistogram>),
}

/// A sharded ingest plane whose tier was chosen at run time by an
/// [`AccumulatorPolicy`]. Every method forwards to the underlying
/// [`ShardedGridBuilder`] monomorphization.
#[derive(Debug, Clone)]
pub enum TierShardedBuilder {
    /// The exact tier.
    Exact(ShardedGridBuilder),
    /// The bounded-memory sketched tier.
    Sketched(ShardedGridBuilder<SketchHistogram>),
}

macro_rules! tier_common_methods {
    () => {
        /// The policy this plane was opened with.
        pub fn policy(&self) -> AccumulatorPolicy {
            match self {
                Self::Exact(_) => AccumulatorPolicy::Exact,
                Self::Sketched(b) => AccumulatorPolicy::Sketched {
                    budget: b.params().budget,
                },
            }
        }

        /// Offers one packet; see the underlying builder's `offer_packet`.
        pub fn offer_packet(&mut self, flow: usize, pkt: &PacketHeader) -> Result<(), StreamError> {
            delegate!(self, b => b.offer_packet(flow, pkt))
        }

        /// Offers one aggregated flow record.
        pub fn offer_flow(&mut self, flow: usize, rec: &FlowRecord) -> Result<(), StreamError> {
            delegate!(self, b => b.offer_flow(flow, rec))
        }

        /// Offers a packet batch through the combining path.
        pub fn offer_packets(
            &mut self,
            batch: &[(usize, PacketHeader)],
        ) -> Result<(), StreamError> {
            delegate!(self, b => b.offer_packets(batch))
        }

        /// Offers a flow-record batch through the combining path.
        pub fn offer_flows(&mut self, batch: &[(usize, FlowRecord)]) -> Result<(), StreamError> {
            delegate!(self, b => b.offer_flows(batch))
        }

        /// Advances the event-time watermark, returning newly sealed bins.
        pub fn advance_watermark(&mut self, event_time: u64) -> Vec<FinalizedBin> {
            delegate!(self, b => b.advance_watermark(event_time))
        }

        /// Seals and returns everything still open — end-of-stream flush.
        pub fn finish(self) -> Vec<FinalizedBin> {
            delegate!(self, b => b.finish())
        }

        /// Current event-time watermark, seconds.
        pub fn watermark(&self) -> u64 {
            delegate!(self, b => b.watermark())
        }

        /// Number of bins currently open.
        pub fn open_bins(&self) -> usize {
            delegate!(self, b => b.open_bins())
        }

        /// Events dropped because their bin had sealed.
        pub fn late_events(&self) -> u64 {
            delegate!(self, b => b.late_events())
        }

        /// Bins finalized so far.
        pub fn finalized_bins(&self) -> u64 {
            delegate!(self, b => b.finalized_bins())
        }

        /// The next bin index to emit.
        pub fn next_bin(&self) -> usize {
            delegate!(self, b => b.next_bin())
        }

        /// Bytes of heap currently owned by the open cells' stores.
        pub fn accumulator_heap_bytes(&self) -> usize {
            delegate!(self, b => b.accumulator_heap_bytes())
        }
    };
}

impl TierGridBuilder {
    tier_common_methods!();
}

impl TierShardedBuilder {
    tier_common_methods!();

    /// Number of shards the flow space is partitioned into.
    pub fn shards(&self) -> usize {
        delegate!(self, b => b.shards())
    }

    /// Toggles cross-batch scratch-buffer reuse (see
    /// [`ShardedGridBuilder::set_scratch_reuse`]).
    pub fn set_scratch_reuse(&mut self, reuse: bool) {
        delegate!(self, b => b.set_scratch_reuse(reuse))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entromine_net::Ipv4;

    fn pkt(src: u32, dport: u16, ts: u64) -> PacketHeader {
        PacketHeader::tcp(Ipv4(src), 1024, Ipv4(9), dport, 100, ts)
    }

    #[test]
    fn default_policy_is_exact() {
        assert_eq!(AccumulatorPolicy::default(), AccumulatorPolicy::Exact);
        assert_eq!(
            AccumulatorPolicy::sketched_default(),
            AccumulatorPolicy::Sketched {
                budget: DEFAULT_BUDGET
            }
        );
    }

    #[test]
    fn facade_round_trips_policy() {
        let cfg = StreamConfig::new(3);
        let exact = AccumulatorPolicy::Exact.streaming(cfg.clone()).unwrap();
        assert_eq!(exact.policy(), AccumulatorPolicy::Exact);
        let sk = AccumulatorPolicy::Sketched { budget: 9 }
            .sharded(cfg, 2)
            .unwrap();
        assert_eq!(sk.policy(), AccumulatorPolicy::Sketched { budget: 9 });
        assert_eq!(sk.shards(), 2);
    }

    #[test]
    fn both_tiers_run_the_same_feed() {
        // A small feed under budget: both tiers must emit identical bins
        // through the facade (level 0 of the sketch is the exact plane).
        let batch: Vec<(usize, PacketHeader)> = (0..60)
            .map(|i| (i % 2, pkt(i as u32 % 7, 80, (i as u64 * 11) % 600)))
            .collect();
        let mut bins = Vec::new();
        for policy in [
            AccumulatorPolicy::Exact,
            AccumulatorPolicy::Sketched { budget: 64 },
        ] {
            let mut plane = policy.streaming(StreamConfig::new(2)).unwrap();
            plane.offer_packets(&batch).unwrap();
            bins.push(plane.finish());
        }
        assert_eq!(bins[0], bins[1]);

        let mut sharded = AccumulatorPolicy::Sketched { budget: 64 }
            .sharded(StreamConfig::new(2), 2)
            .unwrap();
        sharded.offer_packets(&batch).unwrap();
        assert_eq!(sharded.finish(), bins[0]);
    }

    #[test]
    fn sketched_facade_reports_bounded_heap() {
        let mut plane = AccumulatorPolicy::Sketched { budget: 16 }
            .streaming(StreamConfig::new(1))
            .unwrap();
        let batch: Vec<(usize, PacketHeader)> =
            (0..30_000u32).map(|i| (0, pkt(i, 80, 10))).collect();
        plane.offer_packets(&batch).unwrap();
        assert!(
            plane.accumulator_heap_bytes() <= 4 * crate::SketchHistogram::heap_ceiling(16),
            "one open cell must stay under 4 per-feature ceilings"
        );
    }
}
