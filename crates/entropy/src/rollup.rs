//! Hierarchical prefix rollup over a distribution store.
//!
//! The paper's diagnosis step wants coarser views of an anomalous cell
//! than single addresses: "which /8 (or /16) does the scan traffic
//! concentrate in?" is answered by aggregating a feature store's mass up
//! an address-prefix tree. [`PrefixRollup`] builds that tree from any
//! [`DistributionAccumulator`] — exact or sketched — by bucketing each
//! retained value's count under its top `w` bits for every requested
//! width `w`.
//!
//! For the exact tier the rollup is exact: the mass of a prefix is the
//! true packet count under it. For the sketched tier each retained count
//! is scaled by the store's inverse inclusion probability
//! ([`DistributionAccumulator::scale`]) — the Horvitz–Thompson estimate
//! of the prefix mass, unbiased for every prefix at every width. This is
//! the point of rolling up *after* sketching: coarse prefixes aggregate
//! many survivors, so their relative error shrinks exactly where the
//! diagnosis questions are asked.
//!
//! Two invariants hold in both tiers, and the tests pin them:
//!
//! * **Conservation across widths**: a prefix's mass equals the sum of
//!   its children's masses at any finer width (all levels are built from
//!   one survivor set).
//! * **Root mass**: the width-0 rollup holds the store's whole retained
//!   mass — for the exact tier, exactly [`total`]; for the sketched tier,
//!   the HT estimate of it.
//!
//! [`total`]: DistributionAccumulator::total

use crate::dist::DistributionAccumulator;
use std::collections::BTreeMap;

/// Aggregation tree over one feature store: per requested prefix width,
/// the raw retained mass under every non-empty prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixRollup {
    /// The prefix widths (leading-bit counts, 0–32), as requested.
    widths: Vec<u8>,
    /// Inverse inclusion probability of the source store's retained
    /// entries (1.0 for exact tiers).
    scale: f64,
    /// Per width (parallel to `widths`), prefix → raw retained count.
    levels: Vec<BTreeMap<u32, u64>>,
}

impl PrefixRollup {
    /// Builds the rollup of `store` at the given `widths`. Widths above
    /// 32 are clamped to 32 (the full value); duplicates are honored as
    /// given so callers can index levels positionally.
    pub fn from_accumulator<D: DistributionAccumulator>(store: &D, widths: &[u8]) -> Self {
        let entries = store.retained_entries();
        let widths: Vec<u8> = widths.iter().map(|&w| w.min(32)).collect();
        let levels = widths
            .iter()
            .map(|&w| {
                let mut level: BTreeMap<u32, u64> = BTreeMap::new();
                for &(value, count) in &entries {
                    *level.entry(prefix_of(value, w)).or_insert(0) += count;
                }
                level
            })
            .collect();
        PrefixRollup {
            widths,
            scale: store.scale(),
            levels,
        }
    }

    /// The widths this rollup was built at.
    pub fn widths(&self) -> &[u8] {
        &self.widths
    }

    /// The estimated population mass (packet count) under `prefix` at
    /// `width` — exact for exact tiers, the Horvitz–Thompson estimate for
    /// sketched ones. Unknown widths and empty prefixes report 0.
    pub fn mass(&self, width: u8, prefix: u32) -> f64 {
        match self.level_of(width) {
            Some(level) => level.get(&prefix).copied().unwrap_or(0) as f64 * self.scale,
            None => 0.0,
        }
    }

    /// Number of non-empty prefixes at `width` (0 for unknown widths).
    pub fn prefixes_at(&self, width: u8) -> usize {
        self.level_of(width).map_or(0, BTreeMap::len)
    }

    /// The `k` heaviest prefixes at `width` with their estimated masses,
    /// heaviest first. Deterministic: ties break toward the smaller
    /// prefix, mirroring the histograms' `top_k` discipline.
    pub fn top_prefixes(&self, width: u8, k: usize) -> Vec<(u32, f64)> {
        let Some(level) = self.level_of(width) else {
            return Vec::new();
        };
        let mut entries: Vec<(u32, u64)> = level.iter().map(|(&p, &c)| (p, c)).collect();
        entries.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.truncate(k);
        entries
            .into_iter()
            .map(|(p, c)| (p, c as f64 * self.scale))
            .collect()
    }

    /// The whole retained mass, scaled — what the width-0 root holds.
    pub fn total_mass(&self) -> f64 {
        match self.levels.first() {
            Some(level) => level.values().sum::<u64>() as f64 * self.scale,
            None => 0.0,
        }
    }

    fn level_of(&self, width: u8) -> Option<&BTreeMap<u32, u64>> {
        self.widths
            .iter()
            .position(|&w| w == width)
            .map(|i| &self.levels[i])
    }
}

/// The top `width` bits of `value`, right-aligned; width 0 is the root
/// prefix 0.
fn prefix_of(value: u32, width: u8) -> u32 {
    if width == 0 {
        0
    } else {
        value >> (32 - width as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::FeatureHistogram;
    use crate::sketch::{SketchHistogram, SketchParams};

    #[test]
    fn prefix_extraction() {
        assert_eq!(prefix_of(0xC0A8_0101, 8), 0xC0);
        assert_eq!(prefix_of(0xC0A8_0101, 16), 0xC0A8);
        assert_eq!(prefix_of(0xC0A8_0101, 32), 0xC0A8_0101);
        assert_eq!(prefix_of(u32::MAX, 0), 0);
        assert_eq!(prefix_of(u32::MAX, 1), 1);
    }

    #[test]
    fn exact_rollup_is_exact_and_conserved() {
        let mut h = FeatureHistogram::new();
        // Two /8s: 10.x (3 distinct hosts, 6 packets) and 192.x (1 host,
        // 4 packets).
        h.add_n(0x0A00_0001, 1);
        h.add_n(0x0A00_0002, 2);
        h.add_n(0x0A01_0001, 3);
        h.add_n(0xC0A8_0101, 4);
        let r = PrefixRollup::from_accumulator(&h, &[0, 8, 16]);
        assert_eq!(r.mass(8, 0x0A), 6.0);
        assert_eq!(r.mass(8, 0xC0), 4.0);
        assert_eq!(r.mass(16, 0x0A00), 3.0);
        assert_eq!(r.mass(16, 0x0A01), 3.0);
        assert_eq!(r.mass(0, 0), h.total() as f64);
        assert_eq!(r.total_mass(), 10.0);
        // Conservation: every /8's mass is the sum of its /16 children.
        assert_eq!(r.mass(8, 0x0A), r.mass(16, 0x0A00) + r.mass(16, 0x0A01));
        assert_eq!(r.prefixes_at(8), 2);
        assert_eq!(r.prefixes_at(16), 3);
        assert_eq!(r.mass(8, 0x7F), 0.0, "empty prefix");
        assert_eq!(r.mass(24, 0x0A), 0.0, "unrequested width");
    }

    #[test]
    fn top_prefixes_deterministic_ties() {
        let mut h = FeatureHistogram::new();
        h.add_n(0x0100_0000, 5);
        h.add_n(0x0200_0000, 5);
        h.add_n(0x0300_0000, 2);
        let r = PrefixRollup::from_accumulator(&h, &[8]);
        assert_eq!(r.top_prefixes(8, 2), vec![(0x01, 5.0), (0x02, 5.0)]);
        assert_eq!(r.top_prefixes(8, 9).len(), 3);
        assert!(r.top_prefixes(9, 1).is_empty());
    }

    #[test]
    fn sketched_rollup_scales_and_conserves() {
        let mut sk = SketchHistogram::new(SketchParams { budget: 64 });
        // Keys spread across the whole address space (FNV-prime stride),
        // enough of them to force the sketch over budget so scale > 1.
        for i in 0..5_000u32 {
            sk.offer_n(i.wrapping_mul(0x0100_0193), 1 + (i % 3) as u64);
        }
        assert!(sk.level() > 0);
        let r = PrefixRollup::from_accumulator(&sk, &[0, 8, 16]);
        let scale = (1u64 << sk.level()) as f64;
        // Width-0 root = HT estimate of the whole mass.
        let retained: u64 = sk.retained_entries().iter().map(|&(_, c)| c).sum();
        assert_eq!(r.total_mass(), retained as f64 * scale);
        assert_eq!(r.mass(0, 0), r.total_mass());
        assert!(r.prefixes_at(8) > 1, "survivors span many /8s");
        // Conservation at every level: integer sums scaled by one factor.
        let sum8: f64 = (0..=0xFFu32).map(|p| r.mass(8, p)).sum();
        let sum16: f64 = r.top_prefixes(16, usize::MAX).iter().map(|&(_, m)| m).sum();
        assert_eq!(sum8, r.total_mass());
        assert_eq!(sum16, r.total_mass());
        // The estimate lands near the true total (loose 3x check: this is
        // a smoke test, the error-bound suite does the real pinning).
        let true_total = sk.total() as f64;
        assert!(r.total_mass() > true_total / 3.0 && r.total_mass() < true_total * 3.0);
    }
}
