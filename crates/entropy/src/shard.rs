//! The sharded ingest plane: per-shard grid builders + a coordinator.
//!
//! [`StreamingGridBuilder`](crate::StreamingGridBuilder) is a single
//! accumulation thread: every packet of every OD flow funnels through one
//! set of open-bin accumulators. That is the right *executable
//! specification* — small, obviously correct, easy to test against — but
//! a PoP-scale deployment ingests millions of users' traffic, and one
//! core's worth of histogram updates becomes the pipeline's front-door
//! bottleneck long before the detectors do.
//!
//! [`ShardedGridBuilder`] is the production ingest plane:
//!
//! * **Hash partitioning.** Each OD flow is assigned to one of `N` shards
//!   by a fixed multiplicative hash of its flow index. A shard owns the
//!   open-bin [`BinAccumulator`]s of exactly its own flows, so shards
//!   never share mutable state and need no locks.
//! * **Batch fan-out with map-side combining.** Events are offered in
//!   batches ([`offer_packets`](ShardedGridBuilder::offer_packets) /
//!   [`offer_flows`](ShardedGridBuilder::offer_flows)); the coordinator
//!   validates the whole batch up front and assigns each event a cell
//!   rank, then every shard sort-and-groups its slice into
//!   `(bin, flow, flow-key)` combined runs (the `combine` module) and
//!   feeds its accumulators through the weighted `add_n` path — four
//!   table probes per distinct flow per bin instead of four per packet.
//!   Shards fan out over scoped threads, reusing the worker-sizing
//!   discipline of [`entromine_linalg::par`] (spawn only when the batch
//!   is worth it, ≤16 OS threads regardless of shard count).
//! * **Watermark coordination.** The event-time watermark, lateness
//!   slack, sanity horizon, and gap-bin conventions live in the
//!   coordinator and behave exactly like the serial builder's. When a bin
//!   seals, every shard summarizes its slice (in parallel when large
//!   enough) and the coordinator scatters the slices into the dense
//!   flow-ordered [`FinalizedBin`] row.
//!
//! # Bit-identical by construction
//!
//! Each (flow, bin) cell's accumulator receives exactly the traffic the
//! serial builder's cell would — a flow lives on one shard, and
//! combining only reorders and reweights updates, never moves them
//! between cells. Counts are exact integer sums, and entropy
//! finalization is a pure function of each histogram's count multiset
//! (sorted-count-group iteration with compensated summation, see
//! [`sample_entropy`](crate::sample_entropy)), so neither sharding,
//! batch segmentation, nor
//! combining order can perturb a bit of the output. Finalization
//! summarizes each cell independently and places it at its global flow
//! index. The emitted `FinalizedBin` sequence is therefore bitwise
//! identical to the serial per-packet builder's for *any* shard count;
//! the shard-equivalence suite
//! (`crates/entropy/tests/shard_equivalence.rs`) pins this over shard
//! counts 1/2/7/16, late events, and gap bins.
//!
//! # Batch error semantics
//!
//! The serial builder reports a bad event (unknown flow, corrupt
//! far-future timestamp) at the *offer* that carries it, with every prior
//! event already absorbed. A batch is validated **atomically** instead:
//! if any event is invalid the whole batch is rejected before any shard
//! touches an accumulator. Late events are not errors in either plane —
//! they are dropped and counted, never silently.

use crate::accum::{BinAccumulator, BinSummary};
use crate::combine::{self, CellGrid};
use crate::dist::DistributionAccumulator;
use crate::hist::FeatureHistogram;
use crate::stream::{hinted_capacities, FinalizedBin, StreamConfig, StreamError};
use entromine_linalg::par;
use entromine_net::flow::FlowRecord;
use entromine_net::packet::PacketHeader;
use std::collections::BTreeMap;

/// Fixed multiplicative (Fibonacci) hash assigning a flow to a shard.
///
/// The constant is `2^64 / φ`; the high bits of the product are well
/// mixed, so consecutive flow indices spread evenly across shards instead
/// of striding.
fn shard_of(flow: usize, shards: usize) -> usize {
    (((flow as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % shards
}

/// Rough per-packet accumulation cost in the flop-equivalent units
/// [`par::workers_for`] expects (four histogram updates dominate).
const PACKET_WORK: usize = 400;

/// Rough per-cell finalization cost (four entropy reductions) in the same
/// units.
const SUMMARIZE_WORK: usize = 600;

/// One shard of the ingest plane: the open-bin accumulators of the flows
/// it owns, stored at shard-local indices.
#[derive(Debug, Clone)]
struct Shard<D: DistributionAccumulator = FeatureHistogram> {
    /// Global flow ids owned by this shard, ascending. `flows[local] =
    /// global`.
    flows: Vec<usize>,
    /// Open bins, keyed by bin index; each row holds one accumulator per
    /// owned flow, in `flows` order.
    open: BTreeMap<usize, Vec<BinAccumulator<D>>>,
    /// Per owned flow, the per-feature distinct counts of its last
    /// finalized bin with traffic — sizing hints for fresh accumulators.
    size_hints: Vec<[u32; 4]>,
    /// Store parameters for every cell this shard opens.
    params: D::Params,
}

impl<D: DistributionAccumulator> combine::CellGrid<D> for Shard<D> {
    /// Borrows (opening if necessary) the local accumulator for `local`
    /// flow index at `bin`. Fresh rows are pre-sized from the hints so a
    /// steady feed never rehashes mid-bin.
    fn cell(&mut self, bin: usize, local: usize) -> &mut BinAccumulator<D> {
        let hints = &self.size_hints;
        let params = &self.params;
        &mut self.open.entry(bin).or_insert_with(|| {
            hints
                .iter()
                .map(|h| BinAccumulator::with_size_hints_in(hinted_capacities(h), params))
                .collect()
        })[local]
    }
}

impl<D: DistributionAccumulator> Shard<D> {
    /// Removes and summarizes this shard's slice of `bin`, if any traffic
    /// opened it, feeding the observed cardinalities back as hints
    /// (flows that saw no traffic this bin keep their previous hints).
    fn take_summaries(&mut self, bin: usize) -> Option<Vec<BinSummary>> {
        self.open.remove(&bin).map(|row| {
            for (hint, acc) in self.size_hints.iter_mut().zip(&row) {
                if acc.packets() > 0 {
                    let d = acc.size_hints();
                    *hint = [d[0] as u32, d[1] as u32, d[2] as u32, d[3] as u32];
                }
            }
            row.iter().map(BinAccumulator::summarize).collect()
        })
    }
}

/// The sharded ingest plane: hash-partitioned per-shard builders behind a
/// watermark coordinator. See the [module docs](self) for the design and
/// the bit-identity contract with
/// [`StreamingGridBuilder`](crate::StreamingGridBuilder).
///
/// ```
/// use entromine_entropy::shard::ShardedGridBuilder;
/// use entromine_entropy::stream::StreamConfig;
/// use entromine_net::{Ipv4, PacketHeader};
///
/// let mut b = ShardedGridBuilder::new(StreamConfig::new(2), 4).unwrap();
/// let batch = vec![
///     (0, PacketHeader::tcp(Ipv4(1), 10, Ipv4(2), 80, 100, 12)),
///     (1, PacketHeader::tcp(Ipv4(3), 11, Ipv4(4), 443, 100, 290)),
/// ];
/// b.offer_packets(&batch).unwrap();
/// let sealed = b.advance_watermark(300);
/// assert_eq!(sealed.len(), 1);
/// assert_eq!(sealed[0].summaries[0].packets, 1);
/// assert_eq!(sealed[0].summaries[1].packets, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedGridBuilder<D: DistributionAccumulator = FeatureHistogram> {
    config: StreamConfig,
    /// Store parameters handed to every shard (and through them to every
    /// cell) — `()` for the exact tier, the key budget for the sketched.
    params: D::Params,
    /// Flow → shard id.
    shard_ix: Vec<u32>,
    /// Flow → index within its shard's accumulator rows.
    local_ix: Vec<u32>,
    shards: Vec<Shard<D>>,
    watermark: u64,
    next_emit: usize,
    /// Late events dropped (counted by the coordinator on both the
    /// single-event and the batch path).
    late_events: u64,
    /// Offers refused by the far-future horizon bound, mirroring the
    /// serial builder's counter (a refused batch counts once).
    rejected_events: u64,
    finalized_bins: u64,
    /// Per-shard `(rank, index)` sort-key buffers, kept across batches so
    /// a steady feed stops paying one allocation per shard per batch.
    scratch: Vec<Vec<(u64, u32)>>,
    /// Whether [`offer_batch`](Self::offer_packets) keeps the scratch
    /// buffers' capacity between batches (on by default; the bench turns
    /// it off to measure what the reuse buys).
    scratch_reuse: bool,
}

impl ShardedGridBuilder {
    /// A sharded plane with `shards` shards and no open bins, starting at
    /// bin 0 with watermark 0.
    ///
    /// Like [`StreamingGridBuilder::new`](crate::StreamingGridBuilder::new),
    /// this is implemented on the concrete exact-tier type so pre-trait
    /// call sites keep compiling; other tiers go through
    /// [`with_params`](Self::with_params) or the
    /// [`AccumulatorPolicy`](crate::AccumulatorPolicy) facade.
    ///
    /// # Errors
    ///
    /// The same [`StreamError::BadConfig`] conditions as the serial
    /// builder, plus a zero shard count.
    pub fn new(config: StreamConfig, shards: usize) -> Result<Self, StreamError> {
        Self::with_params(config, shards, ())
    }
}

impl<D: DistributionAccumulator> ShardedGridBuilder<D> {
    /// [`new`](ShardedGridBuilder::new) with explicit store parameters —
    /// the tier-generic constructor.
    pub fn with_params(
        config: StreamConfig,
        shards: usize,
        params: D::Params,
    ) -> Result<Self, StreamError> {
        if config.n_flows == 0 {
            return Err(StreamError::BadConfig("grid needs at least one flow"));
        }
        if config.bin_secs == 0 {
            return Err(StreamError::BadConfig("bins must span at least 1 second"));
        }
        if config.horizon_bins == 0 {
            return Err(StreamError::BadConfig(
                "sanity horizon must allow at least 1 bin",
            ));
        }
        if shards == 0 {
            return Err(StreamError::BadConfig(
                "ingest plane needs at least 1 shard",
            ));
        }
        // More shards than flows would leave empty shards; harmless, but
        // clamping keeps the fan-out honest.
        let shards = shards.min(config.n_flows);
        let mut shard_ix = vec![0u32; config.n_flows];
        let mut local_ix = vec![0u32; config.n_flows];
        let mut owned: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for flow in 0..config.n_flows {
            let s = shard_of(flow, shards);
            shard_ix[flow] = s as u32;
            local_ix[flow] = owned[s].len() as u32;
            owned[s].push(flow);
        }
        let scratch = vec![Vec::new(); owned.len()];
        Ok(ShardedGridBuilder {
            config,
            shard_ix,
            local_ix,
            shards: owned
                .into_iter()
                .map(|flows| Shard {
                    size_hints: vec![[0u32; 4]; flows.len()],
                    flows,
                    open: BTreeMap::new(),
                    params: params.clone(),
                })
                .collect(),
            params,
            watermark: 0,
            next_emit: 0,
            late_events: 0,
            rejected_events: 0,
            finalized_bins: 0,
            scratch,
            scratch_reuse: true,
        })
    }

    /// Toggles cross-batch reuse of the per-shard sort-key scratch
    /// buffers (on by default). Turning it off restores the
    /// allocate-per-batch behavior; the pipeline bench uses this to report
    /// the honest before/after ratio of the reuse.
    pub fn set_scratch_reuse(&mut self, reuse: bool) {
        self.scratch_reuse = reuse;
        if !reuse {
            for keys in &mut self.scratch {
                *keys = Vec::new();
            }
        }
    }

    /// Skips ahead so emission starts at `bin`, like the serial builder's
    /// [`starting_at`](crate::StreamingGridBuilder::starting_at).
    pub fn starting_at(mut self, bin: usize) -> Self {
        self.next_emit = self.next_emit.max(bin);
        self
    }

    /// The configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The store parameters every cell is built from.
    pub fn params(&self) -> &D::Params {
        &self.params
    }

    /// Number of shards the flow space is partitioned into.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Current event-time watermark, seconds.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Number of bins currently open on any shard (bounds the working
    /// set).
    pub fn open_bins(&self) -> usize {
        // A bin may be open on several shards; count distinct bins the
        // way the serial builder would.
        let mut bins: Vec<usize> = self
            .shards
            .iter()
            .flat_map(|s| s.open.keys().copied())
            .collect();
        bins.sort_unstable();
        bins.dedup();
        bins.len()
    }

    /// Events dropped because they arrived after their bin sealed.
    pub fn late_events(&self) -> u64 {
        self.late_events
    }

    /// Offers refused by the far-future horizon sanity bound
    /// ([`StreamError::BeyondHorizon`]); semantics match
    /// [`StreamingGridBuilder::rejected_events`].
    ///
    /// [`StreamingGridBuilder::rejected_events`]:
    ///     crate::StreamingGridBuilder::rejected_events
    pub fn rejected_events(&self) -> u64 {
        self.rejected_events
    }

    /// Bins finalized so far.
    pub fn finalized_bins(&self) -> u64 {
        self.finalized_bins
    }

    /// The next bin index [`advance_watermark`](Self::advance_watermark)
    /// will emit.
    pub fn next_bin(&self) -> usize {
        self.next_emit
    }

    /// Validates one event, returning its bin; `None` means late.
    fn admit(&mut self, flow: usize, timestamp: u64) -> Result<Option<usize>, StreamError> {
        let n_flows = self.config.n_flows;
        if flow >= n_flows {
            return Err(StreamError::FlowOutOfRange { flow, n_flows });
        }
        let bin = (timestamp / self.config.bin_secs) as usize;
        if bin < self.next_emit {
            return Ok(None);
        }
        let horizon_end = self.next_emit.saturating_add(self.config.horizon_bins);
        if bin >= horizon_end {
            self.rejected_events += 1;
            return Err(StreamError::BeyondHorizon { bin, horizon_end });
        }
        Ok(Some(bin))
    }

    /// Offers one packet (the serial convenience path; hot feeds should
    /// use [`offer_packets`](Self::offer_packets)).
    pub fn offer_packet(&mut self, flow: usize, pkt: &PacketHeader) -> Result<(), StreamError> {
        match self.admit(flow, pkt.timestamp)? {
            None => self.late_events += 1,
            Some(bin) => {
                let (s, l) = (self.shard_ix[flow] as usize, self.local_ix[flow] as usize);
                self.shards[s].cell(bin, l).add_packet(pkt);
            }
        }
        Ok(())
    }

    /// Offers one aggregated flow record, binned by its first-packet
    /// timestamp like the serial builder.
    pub fn offer_flow(&mut self, flow: usize, rec: &FlowRecord) -> Result<(), StreamError> {
        match self.admit(flow, rec.first)? {
            None => self.late_events += 1,
            Some(bin) => {
                let (s, l) = (self.shard_ix[flow] as usize, self.local_ix[flow] as usize);
                self.shards[s].cell(bin, l).add_flow(rec);
            }
        }
        Ok(())
    }

    /// Offers a batch of packets through the map-side combining path,
    /// fanning accumulation out across the shards. The batch is validated
    /// atomically: on error, nothing has been absorbed. Late events are
    /// dropped and counted.
    pub fn offer_packets(&mut self, batch: &[(usize, PacketHeader)]) -> Result<(), StreamError> {
        self.offer_batch(batch)
    }

    /// Offers a batch of flow records through the same combining path and
    /// atomic validation as [`offer_packets`](Self::offer_packets).
    pub fn offer_flows(&mut self, batch: &[(usize, FlowRecord)]) -> Result<(), StreamError> {
        self.offer_batch(batch)
    }

    /// Shared batch path: validate and partition in one coordinator
    /// pre-pass, then sort-and-group each shard's slice into combined
    /// flow runs and fan the per-shard accumulation out (see the
    /// [`combine`] module for the engine).
    fn offer_batch<E: combine::IngestEvent + Sync>(
        &mut self,
        batch: &[(usize, E)],
    ) -> Result<(), StreamError> {
        // Coordinator pre-pass, O(1) per event: validate (so the
        // expensive accumulation below never aborts half-done), drop and
        // count late events, and assign each survivor its cell rank in
        // its owning shard — each worker then touches only its own events
        // instead of rescanning the whole batch.
        let adm = combine::Admission {
            n_flows: self.config.n_flows,
            bin_secs: self.config.bin_secs,
            next_emit: self.next_emit,
            horizon_bins: self.config.horizon_bins,
        };
        let next_emit = self.next_emit;
        let widths: Vec<usize> = self.shards.iter().map(|s| s.flows.len()).collect();
        // The per-shard sort-key buffers persist on the builder: clearing
        // keeps their capacity, so after the first few batches of a steady
        // feed this path allocates nothing.
        for keys in &mut self.scratch {
            keys.clear();
        }
        let per_shard = &mut self.scratch;
        let shard_ix = &self.shard_ix;
        let local_ix = &self.local_ix;
        let late = match combine::validate_batch(batch, &adm, |idx, flow, bin| {
            let s = shard_ix[flow] as usize;
            let rank = ((bin - next_emit) * widths[s] + local_ix[flow] as usize) as u64;
            per_shard[s].push((rank, idx));
        }) {
            Ok(late) => late,
            Err(e) => {
                if matches!(e, StreamError::BeyondHorizon { .. }) {
                    self.rejected_events += 1;
                }
                return Err(e);
            }
        };
        // The batch validated end to end: only now does any state change.
        self.late_events += late;

        let run = |shard: &mut Shard<D>, keys: &mut Vec<(u64, u32)>| {
            let width = shard.flows.len();
            combine::accumulate_grouped(batch, keys, width, next_emit, shard);
        };

        let workers = par::workers_for(batch.len().saturating_mul(PACKET_WORK));
        if self.shards.len() == 1 || workers <= 1 {
            for (shard, keys) in self.shards.iter_mut().zip(per_shard.iter_mut()) {
                run(shard, keys);
            }
            if !self.scratch_reuse {
                self.set_scratch_reuse(false);
            }
            return Ok(());
        }
        // One worker per shard, with shards grouped when there are more
        // shards than the thread cap allows.
        let groups = par::even_ranges(self.shards.len(), workers.min(par::MAX_THREADS));
        std::thread::scope(|scope| {
            let mut shards_rest: &mut [Shard<D>] = &mut self.shards;
            let mut keys_rest: &mut [Vec<(u64, u32)>] = per_shard;
            for group in &groups {
                let (mine, tail) = shards_rest.split_at_mut(group.len());
                shards_rest = tail;
                let (my_keys, keys_tail) = keys_rest.split_at_mut(group.len());
                keys_rest = keys_tail;
                let run = &run;
                scope.spawn(move || {
                    for (shard, keys) in mine.iter_mut().zip(my_keys) {
                        run(shard, keys);
                    }
                });
            }
        });
        if !self.scratch_reuse {
            self.set_scratch_reuse(false);
        }
        Ok(())
    }

    /// Bytes of heap currently owned by the distribution stores of every
    /// open cell across all shards — the sharded plane's working-set
    /// number for the memory-tier benches. Mirrors
    /// [`StreamingGridBuilder::accumulator_heap_bytes`](crate::StreamingGridBuilder::accumulator_heap_bytes).
    pub fn accumulator_heap_bytes(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.open.values())
            .flat_map(|row| row.iter().map(BinAccumulator::heap_bytes))
            .sum()
    }

    /// Advances the event-time watermark (monotone) and returns every
    /// newly sealed bin in time order — the coordinator half of the
    /// plane, with the same sealing, gap-bin, and horizon-capping rules
    /// as the serial builder.
    pub fn advance_watermark(&mut self, event_time: u64) -> Vec<FinalizedBin> {
        self.watermark = self.watermark.max(event_time);
        let sealed_below = (self.watermark.saturating_sub(self.config.allowed_lateness)
            / self.config.bin_secs) as usize;
        let capped = sealed_below.min(self.next_emit.saturating_add(self.config.horizon_bins));
        self.emit_through(capped)
    }

    /// Seals and returns every bin still open on any shard (plus zero
    /// rows for gaps) — the end-of-stream flush.
    pub fn finish(mut self) -> Vec<FinalizedBin> {
        match self
            .shards
            .iter()
            .filter_map(|s| s.open.keys().next_back().copied())
            .max()
        {
            Some(last) => self.emit_through(last + 1),
            None => Vec::new(),
        }
    }

    /// Emits bins `next_emit..upto` in order: each shard summarizes its
    /// slice of every sealed bin (fanned out when the work justifies it),
    /// and the coordinator scatters the slices into dense flow-ordered
    /// rows.
    fn emit_through(&mut self, upto: usize) -> Vec<FinalizedBin> {
        if self.next_emit >= upto {
            return Vec::new();
        }
        let bins: Vec<usize> = (self.next_emit..upto).collect();

        // Per shard, the summarized slice of every sealed bin it opened.
        let summarize = |shard: &mut Shard<D>| -> Vec<(usize, Vec<BinSummary>)> {
            bins.iter()
                .filter_map(|&bin| shard.take_summaries(bin).map(|s| (bin, s)))
                .collect()
        };
        let open_cells: usize = self
            .shards
            .iter()
            .map(|s| {
                s.open
                    .range(..upto)
                    .map(|(_, row)| row.len())
                    .sum::<usize>()
            })
            .sum();
        let workers = par::workers_for(open_cells.saturating_mul(SUMMARIZE_WORK));
        let slices: Vec<Vec<(usize, Vec<BinSummary>)>> = if self.shards.len() == 1 || workers <= 1 {
            self.shards.iter_mut().map(summarize).collect()
        } else {
            let groups = par::even_ranges(self.shards.len(), workers.min(par::MAX_THREADS));
            let mut slices: Vec<Vec<(usize, Vec<BinSummary>)>> =
                vec![Vec::new(); self.shards.len()];
            std::thread::scope(|scope| {
                let mut shards_rest: &mut [Shard<D>] = &mut self.shards;
                let mut out_rest: &mut [Vec<(usize, Vec<BinSummary>)>] = &mut slices;
                for group in &groups {
                    let (mine, tail) = shards_rest.split_at_mut(group.len());
                    shards_rest = tail;
                    let (out, out_tail) = out_rest.split_at_mut(group.len());
                    out_rest = out_tail;
                    let summarize = &summarize;
                    scope.spawn(move || {
                        for (shard, slot) in mine.iter_mut().zip(out) {
                            *slot = summarize(shard);
                        }
                    });
                }
            });
            slices
        };

        // Scatter: dense zero rows, overwritten wherever a shard had
        // traffic. An untouched cell equals a fresh accumulator's
        // summary, so this matches the serial builder bit for bit.
        let mut rows: BTreeMap<usize, Vec<BinSummary>> = BTreeMap::new();
        for (shard, slice) in self.shards.iter().zip(slices) {
            for (bin, summaries) in slice {
                let row = rows
                    .entry(bin)
                    .or_insert_with(|| vec![BinSummary::default(); self.config.n_flows]);
                for (&flow, summary) in shard.flows.iter().zip(summaries) {
                    row[flow] = summary;
                }
            }
        }
        let out: Vec<FinalizedBin> = bins
            .iter()
            .map(|&bin| FinalizedBin {
                bin,
                summaries: rows
                    .remove(&bin)
                    .unwrap_or_else(|| vec![BinSummary::default(); self.config.n_flows]),
            })
            .collect();
        self.finalized_bins += out.len() as u64;
        self.next_emit = upto;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entromine_net::Ipv4;

    fn pkt(src: u32, dport: u16, ts: u64) -> PacketHeader {
        PacketHeader::tcp(Ipv4(src), 1024, Ipv4(9), dport, 100, ts)
    }

    #[test]
    fn bad_configs_rejected() {
        assert!(ShardedGridBuilder::new(StreamConfig::new(0), 2).is_err());
        assert!(ShardedGridBuilder::new(StreamConfig::new(3), 0).is_err());
        let mut cfg = StreamConfig::new(3);
        cfg.bin_secs = 0;
        assert!(ShardedGridBuilder::new(cfg, 2).is_err());
    }

    #[test]
    fn shard_count_clamped_to_flows() {
        let b = ShardedGridBuilder::new(StreamConfig::new(3), 64).unwrap();
        assert_eq!(b.shards(), 3);
    }

    #[test]
    fn every_flow_owned_exactly_once() {
        let b = ShardedGridBuilder::new(StreamConfig::new(121), 7).unwrap();
        let mut owned: Vec<usize> = b.shards.iter().flat_map(|s| s.flows.clone()).collect();
        owned.sort_unstable();
        assert_eq!(owned, (0..121).collect::<Vec<_>>());
        // The hash spreads flows: no shard is empty, none hoards.
        for s in &b.shards {
            assert!(!s.flows.is_empty());
            assert!(s.flows.len() <= 121 / 7 * 3);
        }
    }

    #[test]
    fn batch_is_validated_atomically() {
        let mut b = ShardedGridBuilder::new(StreamConfig::new(2), 2).unwrap();
        let batch = vec![(0usize, pkt(1, 80, 10)), (5, pkt(2, 80, 20))];
        assert_eq!(
            b.offer_packets(&batch),
            Err(StreamError::FlowOutOfRange {
                flow: 5,
                n_flows: 2
            })
        );
        // Nothing was absorbed: flushing yields no bins.
        assert!(b.finish().is_empty());
    }

    #[test]
    fn late_batch_events_counted_not_misfiled() {
        let mut b = ShardedGridBuilder::new(StreamConfig::new(2), 2).unwrap();
        b.offer_packets(&[(0, pkt(1, 80, 10))]).unwrap();
        assert_eq!(b.advance_watermark(600).len(), 2);
        // Bin 0 is sealed; a batch straggler is dropped and counted.
        b.offer_packets(&[(1, pkt(2, 80, 5)), (1, pkt(3, 80, 700))])
            .unwrap();
        assert_eq!(b.late_events(), 1);
        let sealed = b.advance_watermark(900);
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].summaries[1].packets, 1);
    }

    #[test]
    fn corrupt_timestamp_rejected_in_batch() {
        let mut b = ShardedGridBuilder::new(StreamConfig::new(1), 1).unwrap();
        assert!(matches!(
            b.offer_packets(&[(0, pkt(1, 80, u64::MAX))]),
            Err(StreamError::BeyondHorizon { .. })
        ));
        assert_eq!(b.rejected_events(), 1);
        assert!(b.offer_packet(0, &pkt(2, 80, u64::MAX)).is_err());
        assert_eq!(b.rejected_events(), 2);
    }

    #[test]
    fn single_event_offers_match_serial_semantics() {
        let mut b = ShardedGridBuilder::new(StreamConfig::new(2), 2).unwrap();
        assert!(b.offer_packet(3, &pkt(1, 80, 0)).is_err());
        b.offer_packet(0, &pkt(1, 80, 10)).unwrap();
        let sealed = b.advance_watermark(300);
        assert_eq!(sealed.len(), 1);
        b.offer_packet(0, &pkt(2, 80, 20)).unwrap(); // late now
        assert_eq!(b.late_events(), 1);
    }
}
