//! Traffic feature distributions and their entropy summaries.
//!
//! This crate implements §3 of the paper: empirical histograms of the four
//! traffic features (source/destination address and port), the **sample
//! entropy** metric that summarizes a distribution's concentration or
//! dispersal in one number, and the data structures that organize entropy
//! values into the three-way matrix `H(t, p, k)` analysed by the multiway
//! subspace method.
//!
//! * [`FeatureHistogram`] — a counting histogram over one feature: an
//!   open-addressing, linear-probing flat table tuned for the ingest hot
//!   path, with the previous `HashMap`-backed implementation kept as the
//!   pinned observational-equivalence reference ([`MapHistogram`]).
//! * [`sample_entropy`] — `H(X) = -Σ (n_i/S) log2(n_i/S)`, computed as an
//!   order-independent pure function of the count multiset (sorted-count
//!   iteration, Neumaier-compensated summation) so merging and map-side
//!   combining cannot perturb a bit; plus the normalized variant and
//!   alternative dispersion metrics used for ablation (the paper:
//!   "entropy is not the only metric ... we have explored other metrics
//!   and find that entropy works well in practice").
//! * [`BinAccumulator`] / [`BinSummary`] — per-(OD flow, time bin) state:
//!   four feature histograms plus packet and byte counts, summarized into
//!   the six per-bin numbers the paper's timeseries use (bytes, packets,
//!   and four entropies).
//! * [`EntropyTensor`] — the `t x p x 4` tensor `H`, with the unfolding
//!   `H -> t x 4p` of §4.2 (submatrix per feature, in srcIP | srcPort |
//!   dstIP | dstPort order).
//! * [`VolumeMatrix`] — the `t x p` byte and packet count matrices used by
//!   the volume-based baseline detector of Lakhina et al. SIGCOMM 2004.
//! * [`stream`] — the streaming ingest stage: a watermark-driven grid
//!   builder that keeps accumulators only for open bins and emits
//!   finalized per-bin rows as event time advances, so live feeds never
//!   materialize the full grid. Batch offers run the map-side combining
//!   path: validated events are sort-and-grouped into
//!   `(bin, flow, flow-key)` runs and absorbed through weighted `add_n`.
//! * [`shard`] — the sharded ingest plane: flows hash-partitioned across
//!   per-shard builders behind a watermark coordinator, with scoped-thread
//!   batch fan-out, emitting bit-identical `FinalizedBin` rows to the
//!   serial builder at any shard count.
//! * [`DistributionAccumulator`] — the trait the whole accumulation plane
//!   is generic over, with two tiers: the exact [`FeatureHistogram`]
//!   (default everywhere; bit-identical to the pre-trait plane) and the
//!   bounded-memory [`SketchHistogram`] (hash-space level sampling with a
//!   documented entropy error bound, see [`sketch`]). Deployments pick a
//!   tier at run time via [`AccumulatorPolicy`], which opens
//!   [`TierGridBuilder`] / [`TierShardedBuilder`] facades.
//! * [`PrefixRollup`] — hierarchical src/dst aggregation trees over any
//!   store, so sketched cells can answer coarse-prefix diagnosis queries
//!   with Horvitz–Thompson-scaled masses.
//! * [`kernel`] — runtime-dispatched SIMD variants of the two hottest
//!   loops (the flat table's linear probe, semantics-exact; the entropy
//!   finalization's compensated `Σ n·log2 n` reduction,
//!   tolerance-pinned), sharing backend selection — and the
//!   `ENTROMINE_FORCE_SCALAR` override — with `entromine_linalg::kernel`.

// `deny` rather than `forbid`: the SIMD kernel tier (`kernel`) opts back
// in at module scope for its feature-gated `std::arch` bodies; everything
// else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod accum;
mod combine;
mod dist;
mod hist;
pub mod kernel;
mod metrics;
mod policy;
pub mod rollup;
pub mod shard;
pub mod sketch;
pub mod stream;
mod tensor;

pub use accum::{BinAccumulator, BinSummary};
pub use dist::DistributionAccumulator;
pub use hist::{FeatureHistogram, MapHistogram};
pub use metrics::{
    distinct_count, entropy_from_sorted_counts, gini_coefficient, normalized_entropy,
    sample_entropy, simpson_index,
};
pub use policy::{AccumulatorPolicy, TierGridBuilder, TierShardedBuilder};
pub use rollup::PrefixRollup;
pub use shard::ShardedGridBuilder;
pub use sketch::{SketchHistogram, SketchParams, DEFAULT_BUDGET};
pub use stream::{FinalizedBin, StreamConfig, StreamError, StreamingGridBuilder};
pub use tensor::{EntropyTensor, TensorBuilder, VolumeMatrix};

// Re-export the feature vocabulary: the tensor's `k` axis is these four.
pub use entromine_net::packet::{Feature, FEATURES};
