//! Counting histograms over traffic feature values.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A deterministic FxHash-style hasher.
///
/// `std`'s default `HashMap` hasher is seeded per instance, which makes
/// iteration order — and therefore the floating-point summation order of
/// entropy — vary between runs. Reproducibility is a hard requirement here
/// (same seed ⇒ bit-identical dataset), so histograms use this fixed-key
/// multiply-rotate hasher instead. Keys are attacker-influenced in a real
/// deployment only through feature values, whose cardinality per bin is
/// bounded by the sampled packet count, so HashDoS resistance is not a
/// concern at this layer.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Deterministic hash state for histogram maps.
pub type DetState = BuildHasherDefault<FxHasher>;

/// An empirical histogram `X = {n_i, i = 1..N}`: feature value `i` occurred
/// `n_i` times in the sample.
///
/// Keys are the `u32` encoding produced by
/// [`Feature::extract`](entromine_net::packet::Feature::extract) (address
/// as numeric value, port widened).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FeatureHistogram {
    counts: HashMap<u32, u64, DetState>,
    total: u64,
}

impl FeatureHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty histogram with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        FeatureHistogram {
            counts: HashMap::with_capacity_and_hasher(cap, DetState::default()),
            total: 0,
        }
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn add(&mut self, value: u32) {
        self.add_n(value, 1);
    }

    /// Records `n` observations of `value`.
    #[inline]
    pub fn add_n(&mut self, value: u32, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.total += n;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &FeatureHistogram) {
        for (&v, &n) in &other.counts {
            self.add_n(v, n);
        }
    }

    /// Total number of observations `S`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct values `N`.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// `true` if no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Count of a specific value (0 if unseen).
    pub fn count(&self, value: u32) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Iterates over `(value, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&v, &n)| (v, n))
    }

    /// Counts sorted in decreasing order — the paper's "rank order"
    /// histogram view (Figure 1 plots these).
    pub fn rank_ordered_counts(&self) -> Vec<u64> {
        let mut counts: Vec<u64> = self.counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts
    }

    /// The `k` most frequent values with their counts, most frequent first.
    /// Ties are broken by value for determinism.
    pub fn top_k(&self, k: usize) -> Vec<(u32, u64)> {
        let mut pairs: Vec<(u32, u64)> = self.counts.iter().map(|(&v, &n)| (v, n)).collect();
        pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(k);
        pairs
    }

    /// The single most frequent value, if any (ties broken by value).
    pub fn heavy_hitter(&self) -> Option<(u32, u64)> {
        self.top_k(1).into_iter().next()
    }

    /// The fraction of observations belonging to the most frequent value
    /// (0.0 for an empty histogram).
    pub fn max_share(&self) -> f64 {
        match self.heavy_hitter() {
            Some((_, n)) if self.total > 0 => n as f64 / self.total as f64,
            _ => 0.0,
        }
    }
}

impl FromIterator<u32> for FeatureHistogram {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut h = FeatureHistogram::new();
        for v in iter {
            h.add(v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = FeatureHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.total(), 0);
        assert_eq!(h.distinct(), 0);
        assert_eq!(h.count(5), 0);
        assert!(h.rank_ordered_counts().is_empty());
        assert!(h.heavy_hitter().is_none());
        assert_eq!(h.max_share(), 0.0);
    }

    #[test]
    fn counting() {
        let h: FeatureHistogram = [1u32, 1, 2, 3, 3, 3].into_iter().collect();
        assert_eq!(h.total(), 6);
        assert_eq!(h.distinct(), 3);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.count(9), 0);
    }

    #[test]
    fn add_n_and_zero() {
        let mut h = FeatureHistogram::new();
        h.add_n(7, 5);
        h.add_n(8, 0); // no-op
        assert_eq!(h.total(), 5);
        assert_eq!(h.distinct(), 1);
        assert_eq!(h.count(8), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a: FeatureHistogram = [1u32, 2].into_iter().collect();
        let b: FeatureHistogram = [2u32, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.distinct(), 3);
    }

    #[test]
    fn rank_order_is_descending() {
        let h: FeatureHistogram = [5u32, 5, 5, 9, 9, 1].into_iter().collect();
        assert_eq!(h.rank_ordered_counts(), vec![3, 2, 1]);
    }

    #[test]
    fn top_k_and_heavy_hitter() {
        let h: FeatureHistogram = [5u32, 5, 5, 9, 9, 1].into_iter().collect();
        assert_eq!(h.top_k(2), vec![(5, 3), (9, 2)]);
        assert_eq!(h.heavy_hitter(), Some((5, 3)));
        assert!((h.max_share() - 0.5).abs() < 1e-12);
        // k larger than distinct count returns everything.
        assert_eq!(h.top_k(10).len(), 3);
    }

    #[test]
    fn top_k_tie_break_is_deterministic() {
        let h: FeatureHistogram = [4u32, 2, 4, 2].into_iter().collect();
        // Equal counts: smaller value first.
        assert_eq!(h.top_k(2), vec![(2, 2), (4, 2)]);
    }
}
