//! Counting histograms over traffic feature values.
//!
//! Two implementations live here:
//!
//! * [`FeatureHistogram`] — the production table: an open-addressing,
//!   linear-probing flat table of inline `u32` key and `u64` count
//!   columns with power-of-two capacity. One predictable probe sequence per update, no
//!   per-entry indirection, and a whole table that is a handful of cache
//!   lines for the few-hundred-distinct-value histograms a (flow, bin)
//!   cell actually holds — this is the structure the ingest hot path
//!   hammers four times per packet.
//! * [`MapHistogram`] — the previous `HashMap`-backed implementation,
//!   kept verbatim as the pinned *observational-equivalence reference*
//!   (the same serial-reference pattern as `covariance_serial` and
//!   `StreamingGridBuilder`): `crates/entropy/tests/hist_equivalence.rs`
//!   drives both through random operation sequences and requires every
//!   observable — totals, counts, distinct, top-k, rank order, entropy —
//!   to agree exactly.
//!
//! Both use the same fixed-key Fx hash, and neither promises anything
//! about raw iteration order: every derived quantity (entropy, rank
//! order, top-k) is defined as a function of the *multiset* of entries,
//! which is what makes merge and combining order unobservable downstream.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A deterministic FxHash-style hasher.
///
/// `std`'s default `HashMap` hasher is seeded per instance, which makes
/// iteration order — and therefore anything computed from an unsorted
/// walk — vary between runs. Reproducibility is a hard requirement here
/// (same seed ⇒ bit-identical dataset), so histograms use this fixed-key
/// multiply-rotate hasher instead. Keys are attacker-influenced in a real
/// deployment only through feature values, whose cardinality per bin is
/// bounded by the sampled packet count, so HashDoS resistance is not a
/// concern at this layer.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Deterministic hash state for histogram maps.
pub type DetState = BuildHasherDefault<FxHasher>;

/// The flat table's hash: exactly what [`FxHasher`] computes for one
/// `u32` write (the rotate of the zero initial state is a no-op, leaving
/// the single multiply). Shared with the sketched tier
/// (`crate::sketch`), whose level-sampling admission test reads the high
/// bits of this same product — one deterministic hash for the whole
/// accumulation plane.
#[inline(always)]
pub(crate) fn fx_hash(key: u32) -> u64 {
    (key as u64).wrapping_mul(FxHasher::SEED)
}

/// Smallest capacity the table allocates once it holds anything.
const MIN_CAP: usize = 32;

/// Growth factor. Quadrupling instead of doubling halves the number of
/// rehash passes a freshly opened cell pays while filling up, which is
/// where the ingest path spends its allocation budget; the peak load
/// factor stays ≤ 1/2 either way.
const GROWTH: usize = 4;

/// An empirical histogram `X = {n_i, i = 1..N}`: feature value `i`
/// occurred `n_i` times in the sample.
///
/// Keys are the `u32` encoding produced by
/// [`Feature::extract`](entromine_net::packet::Feature::extract) (address
/// as numeric value, port widened).
///
/// # Layout
///
/// Keys and counts live inline in two parallel power-of-two arrays,
/// indexed by the low bits of the Fx hash and probed linearly. (Low
/// bits, deliberately: one Fx multiply by an odd constant maps the
/// *consecutive* integer runs real feature values arrive in — host
/// blocks, ephemeral port ranges — to a collision-free stride modulo a
/// power of two, where the hash's high bits degrade into clustered
/// arithmetic progressions.) Splitting
/// the columns keeps the probe loop inside the dense 4-byte key array —
/// a few KB even for thousands of entries, so the walk stays in L1/L2
/// where an interleaved 16-byte layout would thrash — while the matching
/// count is a single indexed access on hit. A key slot stores
/// `value + 1` with `0` marking vacancy; the one value that encoding
/// cannot represent (`u32::MAX`) lives in a dedicated side counter. The
/// table grows when half full. A default-constructed histogram owns no
/// allocation at all (gap bins materialize thousands of empty cells).
///
/// Equality ([`PartialEq`]) is multiset equality of the entries —
/// capacity and insertion history are not observable.
#[derive(Debug, Clone, Default)]
pub struct FeatureHistogram {
    /// Stored keys (`value + 1`; 0 = vacant), power-of-two length.
    keys: Vec<u32>,
    /// Count of each occupied key slot, same indices as `keys`.
    counts: Vec<u64>,
    /// Occupied slots (= distinct values, excluding the side counter).
    distinct: usize,
    /// Occupancy threshold that triggers the next growth.
    grow_at: usize,
    total: u64,
    /// Count of `u32::MAX`, the one value the vacancy encoding cannot
    /// store in the table.
    max_key_count: u64,
}

impl FeatureHistogram {
    /// An empty histogram (no allocation).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty histogram pre-sized to absorb `cap` distinct values
    /// without growing (the ingest plane feeds this from the previous
    /// bin's observed cardinality).
    pub fn with_capacity(cap: usize) -> Self {
        let mut h = FeatureHistogram::default();
        if cap > 0 {
            h.rebuild((cap * 2).next_power_of_two().max(MIN_CAP));
        }
        h
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn add(&mut self, value: u32) {
        self.add_n(value, 1);
    }

    /// Records `n` observations of `value`.
    #[inline]
    pub fn add_n(&mut self, value: u32, n: u64) {
        if n == 0 {
            return;
        }
        self.total += n;
        let Some(stored) = value.checked_add(1) else {
            self.max_key_count += n;
            return;
        };
        // Growing *before* the probe keeps the walk free of any fullness
        // check: occupancy never exceeds half the slots, so a vacant slot
        // is always reachable.
        if self.distinct >= self.grow_at {
            self.grow();
        }
        // The probe kernel walks several slots per step under SIMD but
        // returns the exact slot the scalar walk would, so the table
        // layout is backend-independent.
        match crate::kernel::probe(&self.keys, fx_hash(value) as usize, stored) {
            crate::kernel::ProbeResult::Hit(j) => self.counts[j] += n,
            crate::kernel::ProbeResult::Vacant(j) => {
                self.keys[j] = stored;
                self.counts[j] = n;
                self.distinct += 1;
            }
        }
    }

    /// Ensures the table can absorb `additional` more distinct values
    /// without growing mid-stream.
    pub fn reserve(&mut self, additional: usize) {
        let needed = (self.distinct + additional).saturating_mul(2);
        if needed > self.keys.len() {
            self.rebuild(needed.next_power_of_two().max(MIN_CAP));
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &FeatureHistogram) {
        // Pre-reserve for the incoming entries so the merge rehashes at
        // most once instead of once per growth step.
        self.reserve(other.distinct);
        for (v, n) in other.iter() {
            self.add_n(v, n);
        }
    }

    /// Re-homes every entry into fresh arrays of `cap` slots.
    #[cold]
    fn rebuild(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two() && cap >= MIN_CAP);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; cap]);
        let old_counts = std::mem::replace(&mut self.counts, vec![0; cap]);
        self.grow_at = cap / 2;
        for (stored, count) in old_keys.into_iter().zip(old_counts) {
            if stored == 0 {
                continue;
            }
            // Keys are unique, so the probe can only land on a vacancy —
            // the same slot the scalar walk picks, on every backend.
            match crate::kernel::probe(&self.keys, fx_hash(stored - 1) as usize, stored) {
                crate::kernel::ProbeResult::Vacant(j) => {
                    self.keys[j] = stored;
                    self.counts[j] = count;
                }
                crate::kernel::ProbeResult::Hit(_) => unreachable!("rehashed keys are unique"),
            }
        }
    }

    #[cold]
    fn grow(&mut self) {
        let cap = if self.keys.is_empty() {
            MIN_CAP
        } else {
            self.keys.len() * GROWTH
        };
        self.rebuild(cap);
    }

    /// Total number of observations `S`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct values `N`.
    pub fn distinct(&self) -> usize {
        self.distinct + (self.max_key_count != 0) as usize
    }

    /// `true` if no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Count of a specific value (0 if unseen).
    pub fn count(&self, value: u32) -> u64 {
        let Some(stored) = value.checked_add(1) else {
            return self.max_key_count;
        };
        if self.keys.is_empty() {
            return 0;
        }
        match crate::kernel::probe(&self.keys, fx_hash(value) as usize, stored) {
            crate::kernel::ProbeResult::Hit(j) => self.counts[j],
            crate::kernel::ProbeResult::Vacant(_) => 0,
        }
    }

    /// Iterates over `(value, count)` pairs in unspecified order.
    ///
    /// Everything derived from a histogram must be a function of the
    /// multiset of pairs, never of this order (which depends on capacity
    /// history); the sorted accessors below are the canonical views.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.keys
            .iter()
            .zip(&self.counts)
            .filter(|(&k, _)| k != 0)
            .map(|(&k, &n)| (k - 1, n))
            .chain((self.max_key_count != 0).then_some((u32::MAX, self.max_key_count)))
    }

    /// All counts, ascending — the canonical multiset view the dispersion
    /// metrics consume (entropy, Gini, and rank order are functions of
    /// the count multiset alone).
    pub fn counts_sorted(&self) -> Vec<u64> {
        let mut counts: Vec<u64> = self.iter().map(|(_, n)| n).collect();
        counts.sort_unstable();
        counts
    }

    /// Counts sorted in decreasing order — the paper's "rank order"
    /// histogram view (Figure 1 plots these).
    pub fn rank_ordered_counts(&self) -> Vec<u64> {
        let mut counts = self.counts_sorted();
        counts.reverse();
        counts
    }

    /// The `k` most frequent values with their counts, most frequent
    /// first. Ties are broken by value for determinism.
    ///
    /// Uses partial selection (`select_nth_unstable`) so only the top `k`
    /// pay the sort, not all `N` entries.
    pub fn top_k(&self, k: usize) -> Vec<(u32, u64)> {
        if k == 0 {
            return Vec::new();
        }
        let mut pairs: Vec<(u32, u64)> = self.iter().collect();
        let order = |a: &(u32, u64), b: &(u32, u64)| b.1.cmp(&a.1).then(a.0.cmp(&b.0));
        if k < pairs.len() {
            pairs.select_nth_unstable_by(k - 1, order);
            pairs.truncate(k);
        }
        pairs.sort_unstable_by(order);
        pairs
    }

    /// The single most frequent value, if any (ties broken by value).
    pub fn heavy_hitter(&self) -> Option<(u32, u64)> {
        self.top_k(1).into_iter().next()
    }

    /// Bytes of heap currently owned by the table (the two parallel slot
    /// columns; the struct header itself is not counted). This is the
    /// number the memory-tier benches and ceilings account against: a
    /// `u32` key column plus a `u64` count column is 12 bytes per slot.
    pub fn heap_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u32>()
            + self.counts.capacity() * std::mem::size_of::<u64>()
    }

    /// The fraction of observations belonging to the most frequent value
    /// (0.0 for an empty histogram).
    pub fn max_share(&self) -> f64 {
        match self.heavy_hitter() {
            Some((_, n)) if self.total > 0 => n as f64 / self.total as f64,
            _ => 0.0,
        }
    }
}

impl PartialEq for FeatureHistogram {
    /// Multiset equality: same totals and the same `(value, count)`
    /// entries, regardless of capacity or insertion history.
    fn eq(&self, other: &Self) -> bool {
        self.total == other.total
            && self.distinct() == other.distinct()
            && self.iter().all(|(v, n)| other.count(v) == n)
    }
}

impl Eq for FeatureHistogram {}

impl FromIterator<u32> for FeatureHistogram {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut h = FeatureHistogram::new();
        for v in iter {
            h.add(v);
        }
        h
    }
}

/// The `HashMap`-backed histogram this crate used before the flat table —
/// kept, unchanged in behaviour, as the pinned observational-equivalence
/// reference for [`FeatureHistogram`]. Not used on any hot path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapHistogram {
    counts: HashMap<u32, u64, DetState>,
    total: u64,
}

impl MapHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn add(&mut self, value: u32) {
        self.add_n(value, 1);
    }

    /// Records `n` observations of `value`.
    pub fn add_n(&mut self, value: u32, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.total += n;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &MapHistogram) {
        for (&v, &n) in &other.counts {
            self.add_n(v, n);
        }
    }

    /// Total number of observations `S`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct values `N`.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Count of a specific value (0 if unseen).
    pub fn count(&self, value: u32) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Iterates over `(value, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&v, &n)| (v, n))
    }

    /// All counts, ascending (the canonical multiset view).
    pub fn counts_sorted(&self) -> Vec<u64> {
        let mut counts: Vec<u64> = self.counts.values().copied().collect();
        counts.sort_unstable();
        counts
    }

    /// Counts sorted in decreasing order.
    pub fn rank_ordered_counts(&self) -> Vec<u64> {
        let mut counts = self.counts_sorted();
        counts.reverse();
        counts
    }

    /// The `k` most frequent values, most frequent first, ties broken by
    /// value (the reference implementation sorts everything).
    pub fn top_k(&self, k: usize) -> Vec<(u32, u64)> {
        let mut pairs: Vec<(u32, u64)> = self.counts.iter().map(|(&v, &n)| (v, n)).collect();
        pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(k);
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = FeatureHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.total(), 0);
        assert_eq!(h.distinct(), 0);
        assert_eq!(h.count(5), 0);
        assert!(h.rank_ordered_counts().is_empty());
        assert!(h.heavy_hitter().is_none());
        assert_eq!(h.max_share(), 0.0);
        // No allocation until the first observation.
        assert_eq!(h.keys.capacity(), 0);
    }

    #[test]
    fn counting() {
        let h: FeatureHistogram = [1u32, 1, 2, 3, 3, 3].into_iter().collect();
        assert_eq!(h.total(), 6);
        assert_eq!(h.distinct(), 3);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.count(9), 0);
    }

    #[test]
    fn add_n_and_zero() {
        let mut h = FeatureHistogram::new();
        h.add_n(7, 5);
        h.add_n(8, 0); // no-op
        assert_eq!(h.total(), 5);
        assert_eq!(h.distinct(), 1);
        assert_eq!(h.count(8), 0);
    }

    #[test]
    fn key_zero_is_a_valid_value() {
        // Slot vacancy is tracked by count, not key, so value 0 (a real
        // address encoding) must behave like any other.
        let mut h = FeatureHistogram::new();
        h.add(0);
        h.add(0);
        h.add(7);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.distinct(), 2);
    }

    #[test]
    fn growth_preserves_contents() {
        let mut h = FeatureHistogram::new();
        for v in 0..10_000u32 {
            h.add_n(v, (v as u64 % 7) + 1);
        }
        assert_eq!(h.distinct(), 10_000);
        for v in 0..10_000u32 {
            assert_eq!(h.count(v), (v as u64 % 7) + 1);
        }
        // Load factor stays at or below one half.
        assert!(h.keys.len() >= 2 * h.distinct());
    }

    #[test]
    fn with_capacity_absorbs_without_growth() {
        let mut h = FeatureHistogram::with_capacity(500);
        let cap = h.keys.len();
        for v in 0..500u32 {
            h.add(v);
        }
        assert_eq!(h.keys.len(), cap, "pre-sized table must not grow");
    }

    #[test]
    fn merge_adds_counts() {
        let mut a: FeatureHistogram = [1u32, 2].into_iter().collect();
        let b: FeatureHistogram = [2u32, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.distinct(), 3);
    }

    #[test]
    fn multiset_equality_ignores_history() {
        // Same multiset built in different orders, with different
        // capacity histories, must compare equal.
        let a: FeatureHistogram = [5u32, 9, 9, 1, 5, 5].into_iter().collect();
        let mut b = FeatureHistogram::with_capacity(300);
        b.add_n(9, 2);
        b.add_n(1, 1);
        b.add_n(5, 3);
        assert_eq!(a, b);
        let mut c = b.clone();
        c.add(1);
        assert_ne!(a, c);
    }

    #[test]
    fn rank_order_is_descending() {
        let h: FeatureHistogram = [5u32, 5, 5, 9, 9, 1].into_iter().collect();
        assert_eq!(h.rank_ordered_counts(), vec![3, 2, 1]);
    }

    #[test]
    fn top_k_and_heavy_hitter() {
        let h: FeatureHistogram = [5u32, 5, 5, 9, 9, 1].into_iter().collect();
        assert_eq!(h.top_k(2), vec![(5, 3), (9, 2)]);
        assert_eq!(h.heavy_hitter(), Some((5, 3)));
        assert!((h.max_share() - 0.5).abs() < 1e-12);
        // k larger than distinct count returns everything.
        assert_eq!(h.top_k(10).len(), 3);
        assert!(h.top_k(0).is_empty());
    }

    #[test]
    fn top_k_tie_break_is_deterministic() {
        let h: FeatureHistogram = [4u32, 2, 4, 2].into_iter().collect();
        // Equal counts: smaller value first.
        assert_eq!(h.top_k(2), vec![(2, 2), (4, 2)]);
    }

    #[test]
    fn top_k_partial_selection_matches_full_sort() {
        // Many ties across the k boundary: the select_nth path must agree
        // with the reference's full sort.
        let mut flat = FeatureHistogram::new();
        let mut map = MapHistogram::new();
        for v in 0..200u32 {
            let n = (v as u64 % 5) + 1;
            flat.add_n(v, n);
            map.add_n(v, n);
        }
        for k in [0, 1, 3, 40, 199, 200, 500] {
            assert_eq!(flat.top_k(k), map.top_k(k), "k = {k}");
        }
    }
}
