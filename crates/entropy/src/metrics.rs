//! Dispersion metrics over feature histograms.
//!
//! The paper's central summary is **sample entropy** (§3):
//!
//! ```text
//! H(X) = - Σ_{i=1}^{N} (n_i / S) · log2(n_i / S)
//! ```
//!
//! which is 0 when all observations share one value (maximal concentration)
//! and `log2(N)` when all `N` values are equally common (maximal
//! dispersal). The alternatives here (normalized entropy, Simpson index,
//! Gini coefficient, distinct count) support the ablation benches: the
//! paper notes other dispersion metrics exist but that "entropy works well
//! in practice".
//!
//! # Order independence
//!
//! Every metric here is computed as a function of the histogram's **count
//! multiset**, never of its iteration order: counts are first sorted
//! (ascending), and floating-point reductions run over that canonical
//! order with Neumaier-compensated summation. Entropy is evaluated in the
//! algebraically equivalent form
//!
//! ```text
//! H(X) = log2(S) - (Σ n_i · log2(n_i)) / S
//! ```
//!
//! whose terms are all nonnegative (no intermediate cancellation) and
//! vanish exactly for singleton values. The payoff is that entropy is a
//! *pure function of the multiset*: merging histograms, re-batching
//! events, map-side combining, or resizing tables cannot perturb a single
//! bit of the result — which is precisely the property the ingest plane's
//! bit-identity contract stands on.

use crate::hist::FeatureHistogram;
use std::sync::OnceLock;

/// Precomputed `n · log2(n)` for small counts — the overwhelmingly common
/// case in per-cell feature histograms, where most values occur a handful
/// of times. One table lookup replaces a `log2` call on the finalization
/// path.
const TERM_TABLE_LEN: usize = 1024;

fn count_term_table() -> &'static [f64; TERM_TABLE_LEN] {
    static TABLE: OnceLock<[f64; TERM_TABLE_LEN]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0; TERM_TABLE_LEN];
        for (n, slot) in t.iter_mut().enumerate().skip(2) {
            let x = n as f64;
            *slot = x * x.log2();
        }
        t
    })
}

/// `n · log2(n)` with the small-count fast path (0 for `n <= 1`).
#[inline]
pub(crate) fn count_term(n: u64) -> f64 {
    if (n as usize) < TERM_TABLE_LEN {
        count_term_table()[n as usize]
    } else {
        let x = n as f64;
        x * x.log2()
    }
}

/// One step of Neumaier's compensated summation: adds `term` into
/// `(sum, comp)`, capturing the low-order bits ordinary addition drops.
#[inline]
pub(crate) fn neumaier(sum: &mut f64, comp: &mut f64, term: f64) {
    let t = *sum + term;
    if sum.abs() >= term.abs() {
        *comp += (*sum - t) + term;
    } else {
        *comp += (term - t) + *sum;
    }
    *sum = t;
}

/// The shared correction sum `T = Σ multiplicity · (c · log2 c)` over
/// count groups `(c, multiplicity)` in **ascending count order**, with
/// Neumaier compensation. This is the only floating-point reduction in
/// any entropy path: the exact tier closes it with `log2(S) − T/S`, and
/// the sketched tier (`crate::sketch`) scales it by the inverse sampling
/// rate before the same closing step, so the two tiers share one FP
/// sequence wherever their inputs coincide. Singletons contribute
/// exactly zero (1 · log2 1) on every path: a scan's sea of once-seen
/// ports costs nothing and loses nothing.
///
/// The reduction itself is [`crate::kernel::term_sum`]: a multi-lane
/// compensated kernel on AVX2 hosts, the sequential scalar reference
/// elsewhere (and under `ENTROMINE_FORCE_SCALAR`). Both tiers call this
/// one dispatched function, so within a process the "shared FP sequence"
/// property above is preserved whichever backend is latched.
pub(crate) fn weighted_term_sum(groups: impl Iterator<Item = (u64, u64)>) -> f64 {
    crate::kernel::term_sum(groups)
}

/// The canonical entropy reduction: [`weighted_term_sum`] over ascending
/// count groups, closed with `log2(S) − T/S`. Every entropy path in the
/// crate funnels through this one sequence of floating-point operations,
/// which is what makes the value a pure function of the count multiset.
fn entropy_from_count_groups(total: u64, groups: impl Iterator<Item = (u64, u64)>) -> f64 {
    let t = weighted_term_sum(groups);
    let s = total as f64;
    (s.log2() - t / s).max(0.0)
}

/// Groups an ascending count slice into `(count, multiplicity)` pairs.
pub(crate) fn sorted_groups(counts: &[u64]) -> impl Iterator<Item = (u64, u64)> + '_ {
    let mut i = 0;
    std::iter::from_fn(move || {
        if i >= counts.len() {
            return None;
        }
        let c = counts[i];
        let start = i;
        while i < counts.len() && counts[i] == c {
            i += 1;
        }
        Some((c, (i - start) as u64))
    })
}

/// Sample entropy from a canonical (ascending) count multiset — the
/// shared core of [`sample_entropy`], the `MapHistogram` reference path in
/// the equivalence suite, and the high-precision pinning tests.
///
/// `counts` must be sorted ascending; `total` must equal its sum. Equal
/// counts are folded into one weighted term, and the weighted terms are
/// accumulated with Neumaier compensation, so the result is a
/// deterministic pure function of `(total, counts)`.
pub fn entropy_from_sorted_counts(total: u64, counts: &[u64]) -> f64 {
    debug_assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    debug_assert_eq!(counts.iter().sum::<u64>(), total);
    if total == 0 || counts.len() <= 1 {
        return 0.0;
    }
    entropy_from_count_groups(total, sorted_groups(counts))
}

/// Counts below this threshold are histogrammed into a stack array at
/// finalization instead of being sorted — per-cell feature histograms
/// are overwhelmingly small counts, so this removes the comparison sort
/// from the hot finalization path.
const SMALL_COUNT: usize = 256;

/// Sample entropy of a histogram, in bits.
///
/// Empty histograms have entropy 0 by convention (there is no distribution
/// to be dispersed).
///
/// Large histograms are canonicalized by a count-of-counts pass (small
/// counts bucketed directly, the rare large ones sorted); small ones
/// sort their counts outright, which is cheaper than zeroing the bucket
/// array. Both produce the exact same ascending group sequence — and
/// therefore bit-identical results — as [`entropy_from_sorted_counts`]
/// over the sorted counts.
pub fn sample_entropy(hist: &FeatureHistogram) -> f64 {
    let total = hist.total();
    let distinct = hist.distinct();
    if total == 0 || distinct <= 1 {
        return 0.0;
    }
    if distinct <= 64 {
        let mut buf = [0u64; 64];
        for (slot, (_, n)) in buf.iter_mut().zip(hist.iter()) {
            *slot = n;
        }
        let counts = &mut buf[..distinct];
        counts.sort_unstable();
        return entropy_from_count_groups(total, sorted_groups(counts));
    }
    let mut small = [0u32; SMALL_COUNT];
    let mut spill: Vec<u64> = Vec::new();
    for (_, n) in hist.iter() {
        if (n as usize) < SMALL_COUNT {
            small[n as usize] += 1;
        } else {
            spill.push(n);
        }
    }
    spill.sort_unstable();
    let small_groups = small
        .iter()
        .enumerate()
        .filter(|(_, &k)| k != 0)
        .map(|(c, &k)| (c as u64, k as u64));
    entropy_from_count_groups(total, small_groups.chain(sorted_groups(&spill)))
}

/// Entropy normalized by its maximum `log2(N)`, mapping any histogram into
/// `[0, 1]`. Histograms with fewer than two distinct values map to 0.
///
/// Useful when comparing distributions with very different support sizes,
/// e.g. ports (≤ 65536 values) against addresses.
pub fn normalized_entropy(hist: &FeatureHistogram) -> f64 {
    let n = hist.distinct();
    if n < 2 {
        return 0.0;
    }
    sample_entropy(hist) / (n as f64).log2()
}

/// Simpson's diversity index `1 - Σ p_i^2`.
///
/// 0 for a single-valued histogram, approaching 1 for highly dispersed
/// ones. The sum of squared counts is formed exactly in integers (order
/// independent by construction) and divided once.
pub fn simpson_index(hist: &FeatureHistogram) -> f64 {
    let s = hist.total();
    if s == 0 {
        return 0.0;
    }
    let sum_sq: u128 = hist.iter().map(|(_, n)| n as u128 * n as u128).sum();
    let s = s as f64;
    (1.0 - sum_sq as f64 / (s * s)).clamp(0.0, 1.0)
}

/// Gini coefficient of the count distribution.
///
/// 0 when all values are equally frequent (perfect equality / maximal
/// dispersal), approaching 1 when one value dominates. Computed over the
/// canonical ascending count order with compensated summation.
pub fn gini_coefficient(hist: &FeatureHistogram) -> f64 {
    let n = hist.distinct();
    if n == 0 || hist.total() == 0 {
        return 0.0;
    }
    let counts = hist.counts_sorted();
    let total: u64 = hist.total();
    // G = (2 Σ_i i·x_(i) ) / (n Σ x) - (n+1)/n    with 1-based ranks i.
    let mut weighted = 0.0;
    let mut comp = 0.0;
    for (i, &x) in counts.iter().enumerate() {
        neumaier(&mut weighted, &mut comp, (i as f64 + 1.0) * x as f64);
    }
    let n_f = n as f64;
    (2.0 * (weighted + comp)) / (n_f * total as f64) - (n_f + 1.0) / n_f
}

/// Number of distinct values — the crudest dispersion measure.
pub fn distinct_count(hist: &FeatureHistogram) -> f64 {
    hist.distinct() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_of(values: &[u32]) -> FeatureHistogram {
        values.iter().copied().collect()
    }

    #[test]
    fn entropy_of_empty_is_zero() {
        assert_eq!(sample_entropy(&FeatureHistogram::new()), 0.0);
    }

    #[test]
    fn entropy_of_constant_is_zero() {
        // "takes on the value 0 when the distribution is maximally
        // concentrated, i.e., all observations are the same."
        let h = hist_of(&[7, 7, 7, 7, 7]);
        assert_eq!(sample_entropy(&h), 0.0);
    }

    #[test]
    fn entropy_of_uniform_is_log2_n() {
        // "takes on the value log2 N when ... n_1 = n_2 = ... = n_N."
        let h = hist_of(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert!((sample_entropy(&h) - 3.0).abs() < 1e-12);
        let h2 = hist_of(&[1, 1, 2, 2, 3, 3]);
        assert!((sample_entropy(&h2) - (3.0f64).log2()).abs() < 1e-12);
    }

    #[test]
    fn entropy_known_asymmetric_case() {
        // p = (3/4, 1/4): H = 2 - 0.75*log2(3) = 0.811278...
        let h = hist_of(&[1, 1, 1, 2]);
        let expected = 2.0 - 0.75 * 3.0f64.log2();
        assert!((sample_entropy(&h) - expected).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_all_singletons_is_exact() {
        // A scan histogram (every value seen once) has entropy exactly
        // log2(S): every term of the correction sum vanishes identically.
        let h: FeatureHistogram = (0..4096u32).collect();
        assert_eq!(sample_entropy(&h), 12.0);
        let h2: FeatureHistogram = (0..1000u32).collect();
        assert_eq!(sample_entropy(&h2), 1000f64.log2());
    }

    #[test]
    fn entropy_bounded_by_log2_n() {
        let h = hist_of(&[1, 1, 2, 3, 3, 3, 4]);
        let max = (h.distinct() as f64).log2();
        let e = sample_entropy(&h);
        assert!(e > 0.0 && e < max);
    }

    #[test]
    fn entropy_concentration_reduces_it() {
        // Adding mass to an existing heavy hitter reduces dispersal.
        let balanced = hist_of(&[1, 2, 3, 4]);
        let skewed = hist_of(&[1, 1, 1, 1, 2, 3, 4]);
        assert!(sample_entropy(&skewed) < sample_entropy(&balanced));
    }

    #[test]
    fn entropy_large_counts_cross_term_table() {
        // Counts straddling the lookup-table boundary agree with the
        // plain formula to high accuracy.
        let mut h = FeatureHistogram::new();
        h.add_n(1, 1023);
        h.add_n(2, 1024);
        h.add_n(3, 5000);
        let s = (1023 + 1024 + 5000) as f64;
        let expected: f64 = -[1023.0, 1024.0, 5000.0]
            .iter()
            .map(|&n| (n / s) * (n / s).log2())
            .sum::<f64>();
        assert!((sample_entropy(&h) - expected).abs() < 1e-12);
    }

    #[test]
    fn normalized_entropy_range() {
        assert_eq!(normalized_entropy(&FeatureHistogram::new()), 0.0);
        assert_eq!(normalized_entropy(&hist_of(&[5, 5])), 0.0); // single value
        let uniform = hist_of(&[1, 2, 3, 4]);
        assert!((normalized_entropy(&uniform) - 1.0).abs() < 1e-12);
        let skewed = hist_of(&[1, 1, 1, 2]);
        let ne = normalized_entropy(&skewed);
        assert!(ne > 0.0 && ne < 1.0);
    }

    #[test]
    fn simpson_index_cases() {
        assert_eq!(simpson_index(&FeatureHistogram::new()), 0.0);
        assert_eq!(simpson_index(&hist_of(&[3, 3, 3])), 0.0);
        // Uniform over 4: 1 - 4*(1/16) = 0.75.
        assert!((simpson_index(&hist_of(&[1, 2, 3, 4])) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gini_cases() {
        assert_eq!(gini_coefficient(&FeatureHistogram::new()), 0.0);
        // Equal counts: Gini = 0.
        let uniform = hist_of(&[1, 1, 2, 2, 3, 3]);
        assert!(gini_coefficient(&uniform).abs() < 1e-12);
        // Strong skew: positive Gini.
        let mut skewed = FeatureHistogram::new();
        skewed.add_n(1, 97);
        skewed.add(2);
        skewed.add(3);
        skewed.add(4);
        assert!(gini_coefficient(&skewed) > 0.5);
    }

    #[test]
    fn distinct_count_metric() {
        assert_eq!(distinct_count(&FeatureHistogram::new()), 0.0);
        assert_eq!(distinct_count(&hist_of(&[1, 1, 2, 9])), 3.0);
    }

    #[test]
    fn port_scan_signature_in_entropy() {
        // Miniature of Figure 1: a port scan disperses destination ports and
        // concentrates destination addresses.
        let normal_ports = hist_of(&[80, 80, 80, 443, 443, 53, 25, 110]);
        let normal_addrs = hist_of(&[1, 2, 3, 4, 5, 1, 2, 3]);

        let mut scan_ports = FeatureHistogram::new();
        let mut scan_addrs = FeatureHistogram::new();
        for port in 0..500u32 {
            scan_ports.add(port);
            scan_addrs.add(42); // one victim
        }

        assert!(
            sample_entropy(&scan_ports) > sample_entropy(&normal_ports),
            "scan must disperse ports"
        );
        assert!(
            sample_entropy(&scan_addrs) < sample_entropy(&normal_addrs),
            "scan must concentrate addresses"
        );
    }
}
