//! Dispersion metrics over feature histograms.
//!
//! The paper's central summary is **sample entropy** (§3):
//!
//! ```text
//! H(X) = - Σ_{i=1}^{N} (n_i / S) · log2(n_i / S)
//! ```
//!
//! which is 0 when all observations share one value (maximal concentration)
//! and `log2(N)` when all `N` values are equally common (maximal
//! dispersal). The alternatives here (normalized entropy, Simpson index,
//! Gini coefficient, distinct count) support the ablation benches: the
//! paper notes other dispersion metrics exist but that "entropy works well
//! in practice".

use crate::hist::FeatureHistogram;

/// Sample entropy of a histogram, in bits.
///
/// Empty histograms have entropy 0 by convention (there is no distribution
/// to be dispersed).
pub fn sample_entropy(hist: &FeatureHistogram) -> f64 {
    let s = hist.total();
    if s == 0 {
        return 0.0;
    }
    let s = s as f64;
    let mut h = 0.0;
    for (_, n) in hist.iter() {
        let p = n as f64 / s;
        h -= p * p.log2();
    }
    // Clamp the tiny negative values floating point can produce for
    // single-value histograms.
    h.max(0.0)
}

/// Entropy normalized by its maximum `log2(N)`, mapping any histogram into
/// `[0, 1]`. Histograms with fewer than two distinct values map to 0.
///
/// Useful when comparing distributions with very different support sizes,
/// e.g. ports (≤ 65536 values) against addresses.
pub fn normalized_entropy(hist: &FeatureHistogram) -> f64 {
    let n = hist.distinct();
    if n < 2 {
        return 0.0;
    }
    sample_entropy(hist) / (n as f64).log2()
}

/// Simpson's diversity index `1 - Σ p_i^2`.
///
/// 0 for a single-valued histogram, approaching 1 for highly dispersed
/// ones. An alternative dispersion summary for the ablation benches.
pub fn simpson_index(hist: &FeatureHistogram) -> f64 {
    let s = hist.total();
    if s == 0 {
        return 0.0;
    }
    let s = s as f64;
    let sum_sq: f64 = hist
        .iter()
        .map(|(_, n)| {
            let p = n as f64 / s;
            p * p
        })
        .sum();
    1.0 - sum_sq
}

/// Gini coefficient of the count distribution.
///
/// 0 when all values are equally frequent (perfect equality / maximal
/// dispersal), approaching 1 when one value dominates.
pub fn gini_coefficient(hist: &FeatureHistogram) -> f64 {
    let n = hist.distinct();
    if n == 0 || hist.total() == 0 {
        return 0.0;
    }
    let mut counts: Vec<u64> = hist.iter().map(|(_, c)| c).collect();
    counts.sort_unstable();
    let total: u64 = hist.total();
    // G = (2 Σ_i i·x_(i) ) / (n Σ x) - (n+1)/n    with 1-based ranks i.
    let weighted: f64 = counts
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    let n_f = n as f64;
    (2.0 * weighted) / (n_f * total as f64) - (n_f + 1.0) / n_f
}

/// Number of distinct values — the crudest dispersion measure.
pub fn distinct_count(hist: &FeatureHistogram) -> f64 {
    hist.distinct() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_of(values: &[u32]) -> FeatureHistogram {
        values.iter().copied().collect()
    }

    #[test]
    fn entropy_of_empty_is_zero() {
        assert_eq!(sample_entropy(&FeatureHistogram::new()), 0.0);
    }

    #[test]
    fn entropy_of_constant_is_zero() {
        // "takes on the value 0 when the distribution is maximally
        // concentrated, i.e., all observations are the same."
        let h = hist_of(&[7, 7, 7, 7, 7]);
        assert_eq!(sample_entropy(&h), 0.0);
    }

    #[test]
    fn entropy_of_uniform_is_log2_n() {
        // "takes on the value log2 N when ... n_1 = n_2 = ... = n_N."
        let h = hist_of(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert!((sample_entropy(&h) - 3.0).abs() < 1e-12);
        let h2 = hist_of(&[1, 1, 2, 2, 3, 3]);
        assert!((sample_entropy(&h2) - (3.0f64).log2()).abs() < 1e-12);
    }

    #[test]
    fn entropy_known_asymmetric_case() {
        // p = (3/4, 1/4): H = 2 - 0.75*log2(3) = 0.811278...
        let h = hist_of(&[1, 1, 1, 2]);
        let expected = 2.0 - 0.75 * 3.0f64.log2();
        assert!((sample_entropy(&h) - expected).abs() < 1e-12);
    }

    #[test]
    fn entropy_bounded_by_log2_n() {
        let h = hist_of(&[1, 1, 2, 3, 3, 3, 4]);
        let max = (h.distinct() as f64).log2();
        let e = sample_entropy(&h);
        assert!(e > 0.0 && e < max);
    }

    #[test]
    fn entropy_concentration_reduces_it() {
        // Adding mass to an existing heavy hitter reduces dispersal.
        let balanced = hist_of(&[1, 2, 3, 4]);
        let skewed = hist_of(&[1, 1, 1, 1, 2, 3, 4]);
        assert!(sample_entropy(&skewed) < sample_entropy(&balanced));
    }

    #[test]
    fn normalized_entropy_range() {
        assert_eq!(normalized_entropy(&FeatureHistogram::new()), 0.0);
        assert_eq!(normalized_entropy(&hist_of(&[5, 5])), 0.0); // single value
        let uniform = hist_of(&[1, 2, 3, 4]);
        assert!((normalized_entropy(&uniform) - 1.0).abs() < 1e-12);
        let skewed = hist_of(&[1, 1, 1, 2]);
        let ne = normalized_entropy(&skewed);
        assert!(ne > 0.0 && ne < 1.0);
    }

    #[test]
    fn simpson_index_cases() {
        assert_eq!(simpson_index(&FeatureHistogram::new()), 0.0);
        assert_eq!(simpson_index(&hist_of(&[3, 3, 3])), 0.0);
        // Uniform over 4: 1 - 4*(1/16) = 0.75.
        assert!((simpson_index(&hist_of(&[1, 2, 3, 4])) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gini_cases() {
        assert_eq!(gini_coefficient(&FeatureHistogram::new()), 0.0);
        // Equal counts: Gini = 0.
        let uniform = hist_of(&[1, 1, 2, 2, 3, 3]);
        assert!(gini_coefficient(&uniform).abs() < 1e-12);
        // Strong skew: positive Gini.
        let mut skewed = FeatureHistogram::new();
        skewed.add_n(1, 97);
        skewed.add(2);
        skewed.add(3);
        skewed.add(4);
        assert!(gini_coefficient(&skewed) > 0.5);
    }

    #[test]
    fn distinct_count_metric() {
        assert_eq!(distinct_count(&FeatureHistogram::new()), 0.0);
        assert_eq!(distinct_count(&hist_of(&[1, 1, 2, 9])), 3.0);
    }

    #[test]
    fn port_scan_signature_in_entropy() {
        // Miniature of Figure 1: a port scan disperses destination ports and
        // concentrates destination addresses.
        let normal_ports = hist_of(&[80, 80, 80, 443, 443, 53, 25, 110]);
        let normal_addrs = hist_of(&[1, 2, 3, 4, 5, 1, 2, 3]);

        let mut scan_ports = FeatureHistogram::new();
        let mut scan_addrs = FeatureHistogram::new();
        for port in 0..500u32 {
            scan_ports.add(port);
            scan_addrs.add(42); // one victim
        }

        assert!(
            sample_entropy(&scan_ports) > sample_entropy(&normal_ports),
            "scan must disperse ports"
        );
        assert!(
            sample_entropy(&scan_addrs) < sample_entropy(&normal_addrs),
            "scan must concentrate addresses"
        );
    }
}
