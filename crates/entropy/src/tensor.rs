//! The three-way entropy tensor `H(t, p, k)` and volume matrices.
//!
//! §4.2 of the paper: the entropy timeseries of all `p` OD flows across the
//! four traffic features form a three-way structure. The **multiway
//! subspace method** unfolds it into a single `t x 4p` matrix by arranging
//! the per-feature submatrices side by side:
//!
//! ```text
//! H = [ H(srcIP) | H(srcPort) | H(dstIP) | H(dstPort) ]
//! ```
//!
//! (columns `1..p` hold source-IP entropy of the `p` flows, `p+1..2p`
//! source-port entropy, and so on). The unit-energy normalization of each
//! submatrix is applied by the subspace layer, not here — the raw tensor is
//! also consumed un-normalized by timeseries plots and identification.

use crate::accum::BinSummary;
use entromine_linalg::Mat;
use entromine_net::packet::{Feature, FEATURES};

/// The `t x p` byte- and packet-count matrices (the volume view of the
/// traffic used by the SIGCOMM 2004 baseline detector).
#[derive(Debug, Clone)]
pub struct VolumeMatrix {
    bytes: Mat,
    packets: Mat,
}

impl VolumeMatrix {
    /// Byte counts: rows are bins, columns OD flows.
    pub fn bytes(&self) -> &Mat {
        &self.bytes
    }

    /// Packet counts: rows are bins, columns OD flows.
    pub fn packets(&self) -> &Mat {
        &self.packets
    }

    /// Number of time bins.
    pub fn n_bins(&self) -> usize {
        self.bytes.rows()
    }

    /// Number of OD flows.
    pub fn n_flows(&self) -> usize {
        self.bytes.cols()
    }
}

/// The three-way entropy matrix `H(t, p, k)`.
///
/// Stored as four `t x p` matrices, one per feature, in [`FEATURES`] order.
#[derive(Debug, Clone)]
pub struct EntropyTensor {
    features: [Mat; 4],
}

impl EntropyTensor {
    /// Number of time bins `t`.
    pub fn n_bins(&self) -> usize {
        self.features[0].rows()
    }

    /// Number of OD flows `p`.
    pub fn n_flows(&self) -> usize {
        self.features[0].cols()
    }

    /// The `t x p` entropy matrix of one feature.
    pub fn feature(&self, f: Feature) -> &Mat {
        &self.features[f.index()]
    }

    /// Entropy value `H(t, p, k)`.
    pub fn get(&self, bin: usize, flow: usize, f: Feature) -> f64 {
        self.features[f.index()][(bin, flow)]
    }

    /// Sets one entropy value (used by injection machinery when a bin is
    /// recomputed with anomaly traffic superimposed).
    pub fn set(&mut self, bin: usize, flow: usize, f: Feature, value: f64) {
        self.features[f.index()][(bin, flow)] = value;
    }

    /// Unfolds the tensor into the `t x 4p` merged matrix of §4.2:
    /// `[H(srcIP) | H(srcPort) | H(dstIP) | H(dstPort)]`.
    pub fn unfold(&self) -> Mat {
        let t = self.n_bins();
        let p = self.n_flows();
        let mut out = Mat::zeros(t, 4 * p);
        for (k, feat) in self.features.iter().enumerate() {
            for bin in 0..t {
                let src = feat.row(bin);
                let dst = &mut out.row_mut(bin)[k * p..(k + 1) * p];
                dst.copy_from_slice(src);
            }
        }
        out
    }

    /// One row of the unfolded matrix (the 4p-vector `h` at a single bin),
    /// without materializing the full unfolding.
    pub fn unfolded_row(&self, bin: usize) -> Vec<f64> {
        let p = self.n_flows();
        let mut row = Vec::with_capacity(4 * p);
        for feat in &self.features {
            row.extend_from_slice(feat.row(bin));
        }
        row
    }

    /// Maps an unfolded column index back to `(feature, flow)`.
    pub fn column_origin(&self, col: usize) -> (Feature, usize) {
        let p = self.n_flows();
        debug_assert!(col < 4 * p);
        (FEATURES[col / p], col % p)
    }

    /// The four unfolded column indices belonging to one OD flow, in
    /// [`FEATURES`] order — the columns selected by the paper's binary
    /// matrix `θ_k` during multi-attribute identification.
    pub fn flow_columns(&self, flow: usize) -> [usize; 4] {
        let p = self.n_flows();
        debug_assert!(flow < p);
        [flow, p + flow, 2 * p + flow, 3 * p + flow]
    }

    /// The entropy timeseries of one (flow, feature) pair.
    pub fn series(&self, flow: usize, f: Feature) -> Vec<f64> {
        self.features[f.index()].col(flow)
    }
}

/// Builds an [`EntropyTensor`] and [`VolumeMatrix`] from per-bin summaries.
///
/// Cells never set stay at zero (the paper's Geant data has missing-data
/// periods; zero entropy/volume is how they appear here too).
#[derive(Debug, Clone)]
pub struct TensorBuilder {
    n_bins: usize,
    n_flows: usize,
    features: [Mat; 4],
    bytes: Mat,
    packets: Mat,
}

impl TensorBuilder {
    /// A builder for `n_bins` bins of `n_flows` OD flows.
    pub fn new(n_bins: usize, n_flows: usize) -> Self {
        TensorBuilder {
            n_bins,
            n_flows,
            features: std::array::from_fn(|_| Mat::zeros(n_bins, n_flows)),
            bytes: Mat::zeros(n_bins, n_flows),
            packets: Mat::zeros(n_bins, n_flows),
        }
    }

    /// Number of bins the builder was sized for.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Number of flows the builder was sized for.
    pub fn n_flows(&self) -> usize {
        self.n_flows
    }

    /// Records the summary for one (bin, flow) cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    pub fn set(&mut self, bin: usize, flow: usize, summary: &BinSummary) {
        assert!(bin < self.n_bins, "bin {bin} out of range");
        assert!(flow < self.n_flows, "flow {flow} out of range");
        for f in FEATURES {
            self.features[f.index()][(bin, flow)] = summary.entropy[f.index()];
        }
        self.bytes[(bin, flow)] = summary.bytes as f64;
        self.packets[(bin, flow)] = summary.packets as f64;
    }

    /// Finishes the build.
    pub fn finish(self) -> (EntropyTensor, VolumeMatrix) {
        (
            EntropyTensor {
                features: self.features,
            },
            VolumeMatrix {
                bytes: self.bytes,
                packets: self.packets,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(packets: u64, bytes: u64, e: [f64; 4]) -> BinSummary {
        BinSummary {
            packets,
            bytes,
            entropy: e,
        }
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = TensorBuilder::new(3, 2);
        b.set(0, 0, &summary(10, 1000, [1.0, 2.0, 3.0, 4.0]));
        b.set(2, 1, &summary(5, 500, [0.5, 0.6, 0.7, 0.8]));
        let (tensor, vol) = b.finish();

        assert_eq!(tensor.n_bins(), 3);
        assert_eq!(tensor.n_flows(), 2);
        assert_eq!(tensor.get(0, 0, Feature::SrcIp), 1.0);
        assert_eq!(tensor.get(0, 0, Feature::DstPort), 4.0);
        assert_eq!(tensor.get(2, 1, Feature::SrcPort), 0.6);
        // Unset cells default to zero.
        assert_eq!(tensor.get(1, 1, Feature::DstIp), 0.0);

        assert_eq!(vol.bytes()[(0, 0)], 1000.0);
        assert_eq!(vol.packets()[(2, 1)], 5.0);
        assert_eq!(vol.n_bins(), 3);
        assert_eq!(vol.n_flows(), 2);
    }

    #[test]
    fn unfold_layout_matches_paper() {
        // 1 bin, 2 flows: the unfolded row must be
        // [srcIP(f0), srcIP(f1), srcPort(f0), srcPort(f1), dstIP(f0),
        //  dstIP(f1), dstPort(f0), dstPort(f1)].
        let mut b = TensorBuilder::new(1, 2);
        b.set(0, 0, &summary(1, 1, [1.0, 2.0, 3.0, 4.0]));
        b.set(0, 1, &summary(1, 1, [10.0, 20.0, 30.0, 40.0]));
        let (tensor, _) = b.finish();
        let h = tensor.unfold();
        assert_eq!(h.shape(), (1, 8));
        assert_eq!(h.row(0), &[1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]);
    }

    #[test]
    fn column_origin_inverts_unfolding() {
        let b = TensorBuilder::new(1, 3);
        let (tensor, _) = b.finish();
        assert_eq!(tensor.column_origin(0), (Feature::SrcIp, 0));
        assert_eq!(tensor.column_origin(2), (Feature::SrcIp, 2));
        assert_eq!(tensor.column_origin(3), (Feature::SrcPort, 0));
        assert_eq!(tensor.column_origin(11), (Feature::DstPort, 2));
    }

    #[test]
    fn flow_columns_select_theta_k() {
        let b = TensorBuilder::new(1, 5);
        let (tensor, _) = b.finish();
        assert_eq!(tensor.flow_columns(2), [2, 7, 12, 17]);
        // The selected columns indeed map back to the same flow.
        for col in tensor.flow_columns(2) {
            let (_, flow) = tensor.column_origin(col);
            assert_eq!(flow, 2);
        }
    }

    #[test]
    fn series_extraction() {
        let mut b = TensorBuilder::new(3, 1);
        for bin in 0..3 {
            b.set(bin, 0, &summary(1, 1, [bin as f64, 0.0, 0.0, 0.0]));
        }
        let (tensor, _) = b.finish();
        assert_eq!(tensor.series(0, Feature::SrcIp), vec![0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_bounds_checked() {
        let mut b = TensorBuilder::new(2, 2);
        b.set(2, 0, &summary(0, 0, [0.0; 4]));
    }

    #[test]
    fn set_updates_tensor() {
        let b = TensorBuilder::new(1, 1);
        let (mut tensor, _) = b.finish();
        tensor.set(0, 0, Feature::DstIp, 5.5);
        assert_eq!(tensor.get(0, 0, Feature::DstIp), 5.5);
    }
}
