//! Streaming construction of the per-bin traffic grid.
//!
//! The batch path ([`TensorBuilder`](crate::TensorBuilder)) assumes the
//! whole `t × p` grid of cell summaries exists before anything downstream
//! runs. An operator watching a live link has no such luxury: packets and
//! flow records arrive roughly in time order, and the grid must grow one
//! finalized bin at a time while memory stays bounded by the number of
//! bins still *open*, not by the length of the stream.
//!
//! [`StreamingGridBuilder`] is that ingest stage. It consumes time-ordered
//! (well, *mostly* time-ordered) packet and flow-record events, keeps a
//! [`BinAccumulator`] grid only for bins the event-time **watermark** has
//! not yet sealed, and emits a [`FinalizedBin`] — the per-flow volume and
//! 4-feature entropy row the detectors consume — as soon as the watermark
//! passes a bin's closing boundary plus the configured lateness slack.
//! Finalization collapses each cell's histograms into 48-byte summaries
//! and drops them, which is exactly the property that lets weeks of
//! network-wide data flow through a fixed-size working set.
//!
//! # Event time, watermarks, lateness
//!
//! * Every offered event carries its own timestamp (seconds from the
//!   measurement epoch); the builder never looks at a wall clock.
//! * The watermark only moves via [`advance_watermark`], monotonically.
//!   Callers that trust their source's ordering advance it with each
//!   event's timestamp; callers with out-of-order sources advance it on a
//!   schedule of their choosing.
//! * Bin `b` (covering `[b·bin_secs, (b+1)·bin_secs)`) is sealed once
//!   `watermark >= (b+1)·bin_secs + allowed_lateness`. Events for sealed
//!   bins are dropped and counted in [`late_events`], never silently.
//! * Bins the watermark skips over without any event finalize as all-zero
//!   rows — the same convention the batch builder uses for missing-data
//!   periods (the paper's Geant archive has them too).
//! * A sanity horizon ([`StreamConfig::horizon_bins`]) bounds how far past
//!   the present an event may land and how many gap bins one watermark
//!   advance emits, so a corrupt timestamp cannot blow the working set.
//!
//! # Per-event vs batch offers
//!
//! [`offer_packet`]/[`offer_flow`] absorb one event at a time — the
//! simple, obviously correct path the equivalence suites treat as the
//! executable specification. [`offer_packets`]/[`offer_flows`] take a
//! whole batch through the map-side combining path (validate →
//! sort-and-group by cell → merge equal flow tuples → weighted `add_n`),
//! which is the hot production path; its output is bit-identical to the
//! per-event path because entropy finalization is a pure function of each
//! histogram's count multiset.
//!
//! [`advance_watermark`]: StreamingGridBuilder::advance_watermark
//! [`late_events`]: StreamingGridBuilder::late_events
//! [`offer_packet`]: StreamingGridBuilder::offer_packet
//! [`offer_flow`]: StreamingGridBuilder::offer_flow
//! [`offer_packets`]: StreamingGridBuilder::offer_packets
//! [`offer_flows`]: StreamingGridBuilder::offer_flows

use crate::accum::{BinAccumulator, BinSummary};
use crate::combine;
use crate::dist::DistributionAccumulator;
use crate::hist::FeatureHistogram;
use entromine_net::flow::FlowRecord;
use entromine_net::packet::PacketHeader;
use std::collections::BTreeMap;
use std::fmt;

/// Converts a per-feature distinct-count hint into the capacity request
/// for a fresh accumulator. The request is the last observed cardinality
/// itself: the table sizes to double that, which both absorbs ordinary
/// bin-over-bin drift without growth and keeps the slot array small
/// enough that the per-cell working set stays cache-resident.
pub(crate) fn hinted_capacities(hint: &[u32; 4]) -> [usize; 4] {
    hint.map(|h| h as usize)
}

/// The serial builder's open-bin map viewed as a [`combine::CellGrid`]:
/// fresh rows are pre-sized from the per-flow hints and built with the
/// builder's store parameters.
struct SerialGrid<'a, D: DistributionAccumulator> {
    open: &'a mut BTreeMap<usize, Vec<BinAccumulator<D>>>,
    hints: &'a [[u32; 4]],
    params: &'a D::Params,
}

impl<D: DistributionAccumulator> combine::CellGrid<D> for SerialGrid<'_, D> {
    fn cell(&mut self, bin: usize, slot: usize) -> &mut BinAccumulator<D> {
        let hints = self.hints;
        let params = self.params;
        &mut self.open.entry(bin).or_insert_with(|| {
            hints
                .iter()
                .map(|h| BinAccumulator::with_size_hints_in(hinted_capacities(h), params))
                .collect()
        })[slot]
    }
}

/// Configuration of the streaming ingest stage.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Number of OD flows `p` in the grid (fixed for a deployment).
    pub n_flows: usize,
    /// Seconds per time bin (the paper uses 5-minute bins).
    pub bin_secs: u64,
    /// Extra event-time slack, in seconds, a bin stays open after its
    /// closing boundary. 0 means a bin seals the instant the watermark
    /// touches the next bin.
    pub allowed_lateness: u64,
    /// Sanity horizon, in bins: an event more than this far ahead of the
    /// next unemitted bin is rejected as corrupt rather than opened, and
    /// one watermark advance emits at most this many bins. Real feeds
    /// deliver events near the present; a garbage timestamp (a classic
    /// corrupted-capture value like `u64::MAX`) would otherwise open a
    /// bin ~6·10¹⁶ and force an unbounded gap-fill — this bound is what
    /// makes the "memory stays bounded by open bins" promise hold against
    /// hostile input. Default: one week of 5-minute bins.
    pub horizon_bins: usize,
}

impl StreamConfig {
    /// Paper-shaped defaults: 5-minute bins, no lateness slack, a one-week
    /// horizon.
    pub fn new(n_flows: usize) -> Self {
        StreamConfig {
            n_flows,
            bin_secs: 300,
            allowed_lateness: 0,
            horizon_bins: 2016,
        }
    }

    /// Sets the lateness slack.
    pub fn with_lateness(mut self, secs: u64) -> Self {
        self.allowed_lateness = secs;
        self
    }

    /// Sets the sanity horizon.
    pub fn with_horizon(mut self, bins: usize) -> Self {
        self.horizon_bins = bins;
        self
    }
}

/// Errors from the streaming ingest stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// An event named a flow index outside the configured grid.
    FlowOutOfRange {
        /// The offending flow index.
        flow: usize,
        /// Number of flows the builder was configured with.
        n_flows: usize,
    },
    /// An event's timestamp lands implausibly far past the next unemitted
    /// bin — a corrupt capture, not a fast clock.
    BeyondHorizon {
        /// The bin the timestamp maps to.
        bin: usize,
        /// The first bin the builder considers implausible.
        horizon_end: usize,
    },
    /// The configuration is unusable (zero flows or zero-length bins).
    BadConfig(&'static str),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::FlowOutOfRange { flow, n_flows } => {
                write!(f, "flow index {flow} out of range for {n_flows} flows")
            }
            StreamError::BeyondHorizon { bin, horizon_end } => {
                write!(
                    f,
                    "event timestamp maps to bin {bin}, past the sanity horizon at bin \
                     {horizon_end} (corrupt timestamp?)"
                )
            }
            StreamError::BadConfig(what) => write!(f, "bad stream config: {what}"),
        }
    }
}

impl std::error::Error for StreamError {}

/// One sealed time bin: the per-flow summaries the detectors consume.
#[derive(Debug, Clone, PartialEq)]
pub struct FinalizedBin {
    /// The time-bin index (`timestamp / bin_secs`).
    pub bin: usize,
    /// One summary per OD flow, dense in flow order. Flows with no
    /// traffic carry the all-zero summary.
    pub summaries: Vec<BinSummary>,
}

impl FinalizedBin {
    /// The raw unfolded entropy row of this bin, length `4p`, laid out
    /// exactly like [`EntropyTensor::unfolded_row`](crate::EntropyTensor::unfolded_row):
    /// `[srcIP(all flows) | srcPort | dstIP | dstPort]`.
    pub fn unfolded_entropy_row(&self) -> Vec<f64> {
        let p = self.summaries.len();
        let mut row = Vec::with_capacity(4 * p);
        for k in 0..4 {
            row.extend(self.summaries.iter().map(|s| s.entropy[k]));
        }
        row
    }

    /// Byte counts per flow (one row of the byte volume matrix).
    pub fn bytes_row(&self) -> Vec<f64> {
        self.summaries.iter().map(|s| s.bytes as f64).collect()
    }

    /// Packet counts per flow (one row of the packet volume matrix).
    pub fn packets_row(&self) -> Vec<f64> {
        self.summaries.iter().map(|s| s.packets as f64).collect()
    }

    /// [`unfolded_entropy_row`](Self::unfolded_entropy_row) into a caller
    /// scratch buffer (cleared first) — the allocation-free form the
    /// per-bin scoring hot path uses.
    pub fn unfolded_entropy_row_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(4 * self.summaries.len());
        for k in 0..4 {
            out.extend(self.summaries.iter().map(|s| s.entropy[k]));
        }
    }

    /// [`bytes_row`](Self::bytes_row) into a caller scratch buffer
    /// (cleared first).
    pub fn bytes_row_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.summaries.iter().map(|s| s.bytes as f64));
    }

    /// [`packets_row`](Self::packets_row) into a caller scratch buffer
    /// (cleared first).
    pub fn packets_row_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.summaries.iter().map(|s| s.packets as f64));
    }
}

/// Streaming grid builder: open-bin accumulators + event-time watermark.
///
/// ```
/// use entromine_entropy::stream::{StreamConfig, StreamingGridBuilder};
/// use entromine_net::{Ipv4, PacketHeader};
///
/// let mut b = StreamingGridBuilder::new(StreamConfig::new(2)).unwrap();
/// // Two packets in bin 0 (t < 300), on flows 0 and 1.
/// let p0 = PacketHeader::tcp(Ipv4(1), 10, Ipv4(2), 80, 100, 12);
/// let p1 = PacketHeader::tcp(Ipv4(3), 11, Ipv4(4), 443, 100, 290);
/// b.offer_packet(0, &p0).unwrap();
/// b.offer_packet(1, &p1).unwrap();
/// assert!(b.advance_watermark(290).is_empty(), "bin 0 still open");
/// // The watermark crossing t = 300 seals bin 0.
/// let sealed = b.advance_watermark(300);
/// assert_eq!(sealed.len(), 1);
/// assert_eq!(sealed[0].bin, 0);
/// assert_eq!(sealed[0].summaries[0].packets, 1);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingGridBuilder<D: DistributionAccumulator = FeatureHistogram> {
    config: StreamConfig,
    /// Store parameters applied to every cell this builder opens —
    /// `()` for the exact tier, the key budget for the sketched tier.
    params: D::Params,
    /// Accumulator grids for bins not yet sealed, keyed by bin index.
    /// A `BTreeMap` keeps drain order = time order for free.
    open: BTreeMap<usize, Vec<BinAccumulator<D>>>,
    /// Highest event time the caller has vouched for.
    watermark: u64,
    /// The next bin index to emit; every bin below it is sealed.
    next_emit: usize,
    /// Events dropped because their bin was already sealed.
    late_events: u64,
    /// Offers refused by the far-future horizon sanity bound (a refused
    /// batch counts once — nothing from it was absorbed).
    rejected_events: u64,
    /// Bins emitted so far.
    finalized_bins: u64,
    /// Per-flow, per-feature distinct counts observed in the last
    /// finalized bin with traffic — the sizing hints the batch path uses
    /// to pre-size fresh accumulators and skip mid-bin rehashing.
    size_hints: Vec<[u32; 4]>,
}

impl StreamingGridBuilder {
    /// A builder with no open bins, starting at bin 0 with watermark 0.
    ///
    /// Implemented on the concrete exact-tier type (the default type
    /// parameter does not apply in expression position), so every
    /// pre-trait call site — `StreamingGridBuilder::new(cfg)` — keeps
    /// compiling and monomorphizing to exactly the code it always did.
    /// Other tiers construct via [`with_params`](Self::with_params) or
    /// the [`AccumulatorPolicy`](crate::AccumulatorPolicy) facade.
    pub fn new(config: StreamConfig) -> Result<Self, StreamError> {
        Self::with_params(config, ())
    }
}

impl<D: DistributionAccumulator> StreamingGridBuilder<D> {
    /// A builder with no open bins whose cells are built from `params` —
    /// the tier-generic constructor behind [`new`].
    ///
    /// [`new`]: StreamingGridBuilder::new
    pub fn with_params(config: StreamConfig, params: D::Params) -> Result<Self, StreamError> {
        if config.n_flows == 0 {
            return Err(StreamError::BadConfig("grid needs at least one flow"));
        }
        if config.bin_secs == 0 {
            return Err(StreamError::BadConfig("bins must span at least 1 second"));
        }
        if config.horizon_bins == 0 {
            return Err(StreamError::BadConfig(
                "sanity horizon must allow at least 1 bin",
            ));
        }
        let size_hints = vec![[0u32; 4]; config.n_flows];
        Ok(StreamingGridBuilder {
            config,
            params,
            open: BTreeMap::new(),
            watermark: 0,
            next_emit: 0,
            late_events: 0,
            rejected_events: 0,
            finalized_bins: 0,
            size_hints,
        })
    }

    /// Skips ahead so emission starts at `bin` (a monitor attached to a
    /// live feed mid-epoch has no business emitting the epoch's past).
    pub fn starting_at(mut self, bin: usize) -> Self {
        self.next_emit = self.next_emit.max(bin);
        self
    }

    /// The configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The store parameters every cell is built from.
    pub fn params(&self) -> &D::Params {
        &self.params
    }

    /// Current event-time watermark, seconds.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Number of bins currently open (bounds the working set).
    pub fn open_bins(&self) -> usize {
        self.open.len()
    }

    /// Events dropped because they arrived after their bin sealed.
    pub fn late_events(&self) -> u64 {
        self.late_events
    }

    /// Offers refused because an event's timestamp lay beyond the
    /// far-future horizon sanity bound ([`StreamError::BeyondHorizon`]).
    /// A refused batch counts once: batch validation is atomic, so
    /// nothing from it was absorbed. Lets an operator distinguish a
    /// clock-skewed exporter (this counter climbing) from plain late
    /// arrivals ([`late_events`](Self::late_events)).
    pub fn rejected_events(&self) -> u64 {
        self.rejected_events
    }

    /// Bins finalized so far.
    pub fn finalized_bins(&self) -> u64 {
        self.finalized_bins
    }

    /// The next bin index [`advance_watermark`](Self::advance_watermark)
    /// will emit.
    pub fn next_bin(&self) -> usize {
        self.next_emit
    }

    /// Offers one packet observed on `flow` at its header timestamp.
    ///
    /// Packets for sealed bins are dropped (counted in
    /// [`late_events`](Self::late_events)); everything else lands in its
    /// bin's accumulator, opening the bin if needed.
    pub fn offer_packet(&mut self, flow: usize, pkt: &PacketHeader) -> Result<(), StreamError> {
        let Some(cell) = self.cell_for(flow, pkt.timestamp)? else {
            return Ok(());
        };
        cell.add_packet(pkt);
        Ok(())
    }

    /// Offers one aggregated flow record, binned by its first-packet
    /// timestamp (how flow collectors export, and how the paper bins).
    pub fn offer_flow(&mut self, flow: usize, rec: &FlowRecord) -> Result<(), StreamError> {
        let Some(cell) = self.cell_for(flow, rec.first)? else {
            return Ok(());
        };
        cell.add_flow(rec);
        Ok(())
    }

    /// Offers a batch of packets through the map-side combining path.
    ///
    /// The batch is validated **atomically** (any invalid event rejects
    /// the whole batch before anything is absorbed; late events are
    /// dropped and counted), then pre-aggregated into `(bin, flow,
    /// flow-key)`-grouped weighted runs so each cell's histograms see
    /// four `add_n` probes per distinct flow per bin instead of four per
    /// packet. The emitted [`FinalizedBin`] rows are bit-identical to
    /// offering every packet through [`offer_packet`](Self::offer_packet).
    pub fn offer_packets(&mut self, batch: &[(usize, PacketHeader)]) -> Result<(), StreamError> {
        self.offer_batch(batch)
    }

    /// Offers a batch of aggregated flow records (binned by first-packet
    /// timestamp) through the same combining path as
    /// [`offer_packets`](Self::offer_packets) — the NetFlow-shaped front
    /// door: records arriving pre-aggregated keep their weights and merge
    /// further whenever they share a bin, flow, and feature tuple.
    pub fn offer_flows(&mut self, batch: &[(usize, FlowRecord)]) -> Result<(), StreamError> {
        self.offer_batch(batch)
    }

    /// Shared combining batch path; see the [`combine`] module for the
    /// validate → sort-and-group → run-merge pipeline.
    fn offer_batch<E: combine::IngestEvent>(
        &mut self,
        batch: &[(usize, E)],
    ) -> Result<(), StreamError> {
        let adm = combine::Admission {
            n_flows: self.config.n_flows,
            bin_secs: self.config.bin_secs,
            next_emit: self.next_emit,
            horizon_bins: self.config.horizon_bins,
        };
        let stride = self.config.n_flows;
        let next_emit = self.next_emit;
        let shape = match combine::validate_grouped(batch, &adm, stride) {
            Ok(shape) => shape,
            Err(e) => {
                if matches!(e, StreamError::BeyondHorizon { .. }) {
                    self.rejected_events += 1;
                }
                return Err(e);
            }
        };
        // The batch validated end to end: only now does any state change.
        self.late_events += shape.late;
        let mut grid = SerialGrid {
            open: &mut self.open,
            hints: &self.size_hints,
            params: &self.params,
        };
        if !shape.combining_profitable() {
            // Too few packets per distinct run for the merge machinery
            // (or a sort) to pay for itself: absorb events one by one in
            // offer order — entropy finalization is order-independent,
            // so this is never slower than per-packet offers and still
            // bit-identical.
            combine::accumulate_per_event(batch, &adm, &mut grid);
        } else if shape.grouped {
            // The common shape — per-bin batches, flow-major replay,
            // NetFlow exports — needs no index array and no sort.
            combine::accumulate_in_order(batch, &adm, &mut grid);
        } else {
            let mut keys = combine::rank_keys(batch, &adm, stride);
            combine::accumulate_grouped(batch, &mut keys, stride, next_emit, &mut grid);
        }
        Ok(())
    }

    /// Borrows (opening if necessary) the accumulator for `flow` at event
    /// time `timestamp`; `None` means the event is late.
    fn cell_for(
        &mut self,
        flow: usize,
        timestamp: u64,
    ) -> Result<Option<&mut BinAccumulator<D>>, StreamError> {
        let n_flows = self.config.n_flows;
        if flow >= n_flows {
            return Err(StreamError::FlowOutOfRange { flow, n_flows });
        }
        let bin = (timestamp / self.config.bin_secs) as usize;
        if bin < self.next_emit {
            self.late_events += 1;
            return Ok(None);
        }
        let horizon_end = self.next_emit.saturating_add(self.config.horizon_bins);
        if bin >= horizon_end {
            self.rejected_events += 1;
            return Err(StreamError::BeyondHorizon { bin, horizon_end });
        }
        let params = &self.params;
        let row = self
            .open
            .entry(bin)
            .or_insert_with(|| vec![BinAccumulator::from_params(params); n_flows]);
        Ok(Some(&mut row[flow]))
    }

    /// Bytes of heap currently owned by the distribution stores of every
    /// open cell — the working-set number the memory-tier benches record.
    /// The sketched tier keeps this under
    /// `4 · open_cells · heap_ceiling(budget)` no matter how many distinct
    /// keys the feed carries; the exact tier grows with the key space.
    pub fn accumulator_heap_bytes(&self) -> usize {
        self.open
            .values()
            .flat_map(|row| row.iter().map(BinAccumulator::heap_bytes))
            .sum()
    }

    /// Advances the event-time watermark to `event_time` (monotone: lower
    /// values are ignored) and returns every newly sealed bin, in time
    /// order.
    ///
    /// A bin seals when the watermark reaches its closing boundary plus
    /// the lateness slack. Skipped bins with no traffic are emitted as
    /// all-zero rows so the grid downstream stays dense and aligned — but
    /// never more than [`StreamConfig::horizon_bins`] of them per call, so
    /// a corrupt far-future timestamp cannot force an unbounded gap-fill
    /// (call again to drain further if the jump was genuine).
    pub fn advance_watermark(&mut self, event_time: u64) -> Vec<FinalizedBin> {
        self.watermark = self.watermark.max(event_time);
        let sealed_below = (self.watermark.saturating_sub(self.config.allowed_lateness)
            / self.config.bin_secs) as usize;
        let capped = sealed_below.min(self.next_emit.saturating_add(self.config.horizon_bins));
        self.emit_through(capped)
    }

    /// Seals and returns every bin still open (plus zero rows for gaps),
    /// regardless of the watermark — the end-of-stream flush.
    pub fn finish(mut self) -> Vec<FinalizedBin> {
        match self.open.keys().next_back() {
            Some(&last) => self.emit_through(last + 1),
            None => Vec::new(),
        }
    }

    /// Emits bins `next_emit..upto` in order, draining their accumulators.
    fn emit_through(&mut self, upto: usize) -> Vec<FinalizedBin> {
        let mut out = Vec::new();
        while self.next_emit < upto {
            let bin = self.next_emit;
            let summaries = match self.open.remove(&bin) {
                Some(row) => {
                    // Feed the observed cardinalities back as sizing
                    // hints for the next bin this flow opens. Flows (and
                    // whole gap bins) that saw no traffic keep their
                    // previous hints — a flow's cardinality profile
                    // outlives a quiet bin.
                    for (hint, acc) in self.size_hints.iter_mut().zip(&row) {
                        if acc.packets() > 0 {
                            let d = acc.size_hints();
                            *hint = [d[0] as u32, d[1] as u32, d[2] as u32, d[3] as u32];
                        }
                    }
                    row.iter().map(BinAccumulator::summarize).collect()
                }
                None => vec![BinSummary::default(); self.config.n_flows],
            };
            out.push(FinalizedBin { bin, summaries });
            self.finalized_bins += 1;
            self.next_emit += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entromine_net::flow::aggregate_bin;
    use entromine_net::Ipv4;

    fn pkt(src: u32, dport: u16, ts: u64) -> PacketHeader {
        PacketHeader::tcp(Ipv4(src), 1024, Ipv4(9), dport, 100, ts)
    }

    fn builder(n_flows: usize) -> StreamingGridBuilder {
        StreamingGridBuilder::new(StreamConfig::new(n_flows)).unwrap()
    }

    #[test]
    fn bad_configs_rejected() {
        assert!(StreamingGridBuilder::new(StreamConfig::new(0)).is_err());
        let mut cfg = StreamConfig::new(3);
        cfg.bin_secs = 0;
        assert!(StreamingGridBuilder::new(cfg).is_err());
    }

    #[test]
    fn flow_index_validated() {
        let mut b = builder(2);
        assert_eq!(
            b.offer_packet(2, &pkt(1, 80, 0)),
            Err(StreamError::FlowOutOfRange {
                flow: 2,
                n_flows: 2
            })
        );
    }

    #[test]
    fn watermark_seals_bins_in_order() {
        let mut b = builder(1);
        b.offer_packet(0, &pkt(1, 80, 10)).unwrap();
        b.offer_packet(0, &pkt(2, 80, 400)).unwrap();
        // Watermark inside bin 0: nothing seals.
        assert!(b.advance_watermark(299).is_empty());
        assert_eq!(b.open_bins(), 2);
        // Crossing into bin 1 seals bin 0 only.
        let sealed = b.advance_watermark(300);
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].bin, 0);
        assert_eq!(sealed[0].summaries[0].packets, 1);
        assert_eq!(b.open_bins(), 1);
        // Watermark never regresses.
        assert!(b.advance_watermark(100).is_empty());
        assert_eq!(b.watermark(), 300);
    }

    #[test]
    fn lateness_slack_keeps_bins_open() {
        let cfg = StreamConfig::new(1).with_lateness(60);
        let mut b = StreamingGridBuilder::new(cfg).unwrap();
        b.offer_packet(0, &pkt(1, 80, 100)).unwrap();
        // Watermark past the boundary but within slack: bin 0 still open,
        // and a straggler for bin 0 is accepted.
        assert!(b.advance_watermark(330).is_empty());
        b.offer_packet(0, &pkt(2, 80, 250)).unwrap();
        assert_eq!(b.late_events(), 0);
        // Past boundary + slack: sealed, straggler now dropped.
        let sealed = b.advance_watermark(360);
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].summaries[0].packets, 2);
        b.offer_packet(0, &pkt(3, 80, 299)).unwrap();
        assert_eq!(b.late_events(), 1);
    }

    #[test]
    fn late_events_do_not_alter_emitted_bins() {
        let mut b = builder(1);
        b.offer_packet(0, &pkt(1, 80, 0)).unwrap();
        let sealed = b.advance_watermark(600);
        assert_eq!(sealed.len(), 2, "bins 0 and 1 seal");
        // Straggler for bin 0: dropped, and nothing new is emitted for it.
        b.offer_packet(0, &pkt(9, 80, 5)).unwrap();
        assert!(b.advance_watermark(900).iter().all(|fb| fb.bin == 2));
        assert_eq!(b.late_events(), 1);
    }

    #[test]
    fn gap_bins_emit_zero_rows() {
        let mut b = builder(2);
        b.offer_packet(0, &pkt(1, 80, 10)).unwrap();
        b.offer_packet(1, &pkt(2, 80, 1000)).unwrap(); // bin 3
        let sealed = b.advance_watermark(1200);
        let bins: Vec<usize> = sealed.iter().map(|fb| fb.bin).collect();
        assert_eq!(bins, vec![0, 1, 2, 3]);
        // Bins 1 and 2 are all-zero.
        for fb in &sealed[1..3] {
            assert!(fb.summaries.iter().all(|s| s.packets == 0));
        }
        assert_eq!(sealed[3].summaries[1].packets, 1);
    }

    #[test]
    fn finish_flushes_everything_open() {
        let mut b = builder(1);
        b.offer_packet(0, &pkt(1, 80, 50)).unwrap();
        b.offer_packet(0, &pkt(2, 80, 700)).unwrap(); // bin 2
        let sealed = b.finish();
        let bins: Vec<usize> = sealed.iter().map(|fb| fb.bin).collect();
        assert_eq!(bins, vec![0, 1, 2]);
        let empty = builder(1).finish();
        assert!(empty.is_empty());
    }

    #[test]
    fn starting_at_skips_history() {
        let mut b = builder(1).starting_at(5);
        // An event from the skipped past is late by definition.
        b.offer_packet(0, &pkt(1, 80, 0)).unwrap();
        assert_eq!(b.late_events(), 1);
        b.offer_packet(0, &pkt(2, 80, 5 * 300 + 10)).unwrap();
        let sealed = b.advance_watermark(6 * 300);
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].bin, 5);
    }

    #[test]
    fn corrupt_far_future_timestamp_rejected() {
        let mut b = builder(1);
        b.offer_packet(0, &pkt(1, 80, 10)).unwrap();
        // A classic corrupted-capture value must not open bin ~6e16.
        assert!(matches!(
            b.offer_packet(0, &pkt(2, 80, u64::MAX)),
            Err(StreamError::BeyondHorizon { .. })
        ));
        assert_eq!(b.rejected_events(), 1);
        // The batch path counts a refused batch once.
        assert!(b.offer_packets(&[(0, pkt(3, 80, u64::MAX))]).is_err());
        assert_eq!(b.rejected_events(), 2);
        // Within the horizon is fine.
        b.offer_packet(0, &pkt(3, 80, 2015 * 300)).unwrap();
        assert_eq!(b.open_bins(), 2);
        assert_eq!(b.rejected_events(), 2);
    }

    #[test]
    fn watermark_jump_emits_at_most_one_horizon_per_call() {
        let cfg = StreamConfig::new(1).with_horizon(10);
        let mut b = StreamingGridBuilder::new(cfg).unwrap();
        b.offer_packet(0, &pkt(1, 80, 0)).unwrap();
        // A garbage watermark cannot force an unbounded gap-fill ...
        let first = b.advance_watermark(u64::MAX);
        assert_eq!(first.len(), 10);
        // ... but repeated calls keep draining, horizon by horizon.
        let second = b.advance_watermark(0);
        assert_eq!(second.len(), 10);
        assert_eq!(second[0].bin, 10);
    }

    #[test]
    fn unfolded_row_layout_matches_tensor_convention() {
        let fb = FinalizedBin {
            bin: 0,
            summaries: vec![
                BinSummary {
                    packets: 1,
                    bytes: 10,
                    entropy: [1.0, 2.0, 3.0, 4.0],
                },
                BinSummary {
                    packets: 2,
                    bytes: 20,
                    entropy: [10.0, 20.0, 30.0, 40.0],
                },
            ],
        };
        assert_eq!(
            fb.unfolded_entropy_row(),
            vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]
        );
        assert_eq!(fb.bytes_row(), vec![10.0, 20.0]);
        assert_eq!(fb.packets_row(), vec![1.0, 2.0]);
    }

    #[test]
    fn batch_offers_match_per_packet_offers_exactly() {
        // The combining batch path must be invisible in the output: same
        // traffic via offer_packets (in shuffled order, so combining and
        // sorting really happen) finalizes bit-identically to per-packet
        // offers.
        let packets: Vec<(usize, PacketHeader)> = (0..600)
            .map(|i| {
                (
                    i % 3,
                    pkt(i as u32 % 11, [80u16, 443, 53][i % 3], (i as u64 * 7) % 900),
                )
            })
            .collect();
        let mut serial = builder(3);
        for (flow, p) in &packets {
            serial.offer_packet(*flow, p).unwrap();
        }
        let serial_bins = serial.finish();

        let mut shuffled = packets.clone();
        shuffled.reverse();
        let mut batched = builder(3);
        for chunk in shuffled.chunks(101) {
            batched.offer_packets(chunk).unwrap();
        }
        let batched_bins = batched.finish();
        assert_eq!(serial_bins, batched_bins);
    }

    #[test]
    fn flow_record_batches_match_packet_batches() {
        let packets: Vec<PacketHeader> = (0..120)
            .map(|i| pkt(i % 5, [80u16, 443][i as usize % 2], 40 + (i as u64) % 260))
            .collect();
        let mut by_packet = builder(1);
        by_packet
            .offer_packets(&packets.iter().map(|p| (0usize, *p)).collect::<Vec<_>>())
            .unwrap();
        let a = by_packet.finish();

        let records: Vec<(usize, FlowRecord)> = aggregate_bin(&packets)
            .into_iter()
            .map(|r| (0usize, r))
            .collect();
        let mut by_record = builder(1);
        by_record.offer_flows(&records).unwrap();
        let b = by_record.finish();
        assert_eq!(a, b);
    }

    #[test]
    fn batch_is_validated_atomically() {
        let mut b = builder(2);
        let batch = vec![(0usize, pkt(1, 80, 10)), (5, pkt(2, 80, 20))];
        assert_eq!(
            b.offer_packets(&batch),
            Err(StreamError::FlowOutOfRange {
                flow: 5,
                n_flows: 2
            })
        );
        // Nothing was absorbed: flushing yields no bins.
        assert!(b.finish().is_empty());
    }

    #[test]
    fn late_batch_events_counted_not_misfiled() {
        let mut b = builder(1);
        b.offer_packets(&[(0, pkt(1, 80, 10))]).unwrap();
        assert_eq!(b.advance_watermark(600).len(), 2);
        b.offer_packets(&[(0, pkt(2, 80, 5)), (0, pkt(3, 80, 700))])
            .unwrap();
        assert_eq!(b.late_events(), 1);
        let sealed = b.advance_watermark(900);
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].summaries[0].packets, 1);
    }

    #[test]
    fn streamed_summaries_equal_batch_accumulation() {
        // The same packets offered as a stream (packets and flow records
        // mixed) must finalize to exactly the batch accumulator's summary.
        let packets: Vec<PacketHeader> = (0..40)
            .map(|i| pkt(i % 7, [80u16, 443, 53][i as usize % 3], 40 + i as u64))
            .collect();
        let mut batch = BinAccumulator::new();
        batch.add_packets(&packets);

        let mut b = builder(1);
        for p in &packets[..20] {
            b.offer_packet(0, p).unwrap();
        }
        for rec in aggregate_bin(&packets[20..]) {
            b.offer_flow(0, &rec).unwrap();
        }
        let sealed = b.advance_watermark(300);
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].summaries[0], batch.summarize());
    }
}
