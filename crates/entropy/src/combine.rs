//! Map-side combining: the shared batch-ingest engine behind
//! [`StreamingGridBuilder`](crate::StreamingGridBuilder) and
//! [`ShardedGridBuilder`](crate::ShardedGridBuilder) batch offers.
//!
//! A validated batch is reduced to `(cell, flow-key)`-grouped runs before
//! any accumulator is touched:
//!
//! 1. **Validate** every event against the grid (atomic batch error
//!    semantics; late events dropped and counted), assigning each
//!    survivor a *cell rank* — `(bin − next_emit) · stride + slot` — that
//!    totally orders cells by (bin, flow slot). Validation also probes
//!    the batch's [`BatchShape`]: whether it already arrives in rank
//!    order (how per-bin batches, flow-major replays, and NetFlow
//!    exports naturally do) and how many merged runs it would collapse
//!    to; its hot loop is comparison-only (no division, no allocation).
//!    Batches with too few packets per run for combining to pay off
//!    bail out to [`accumulate_per_event`], skipping steps 2–3.
//! 2. **Sort and group.** Grouped batches take the in-order walk — one
//!    sequential pass, no index array, no sort. Everything else gets a
//!    `(rank, index)` key array and one `sort_unstable` on plain
//!    integers, paying `O(n log n)` once to buy perfect cell locality
//!    downstream; ties keep offer order, so packets of one flow burst
//!    stay adjacent either way.
//! 3. **Run-merge** within each cell: consecutive events sharing one
//!    feature tuple collapse into a single weighted run fed through
//!    [`BinAccumulator::absorb_run`]'s `add_n` path, so the histograms
//!    see four table probes per distinct flow per bin instead of four
//!    per packet — with the cell borrowed once per contiguous group and
//!    no allocation per packet.
//!
//! Because entropy finalization is a pure function of each histogram's
//! count multiset (see [`crate::metrics`]), none of this reordering or
//! weighting is observable downstream: the combining paths emit
//! [`FinalizedBin`](crate::FinalizedBin) rows bit-identical to per-packet
//! offers, which `crates/entropy/tests/shard_equivalence.rs` pins.

use crate::accum::BinAccumulator;
use crate::dist::DistributionAccumulator;
use crate::hist::FeatureHistogram;
use crate::stream::StreamError;

/// The accumulation surface the combining engine drives: anything that
/// can lend out the accumulator of a `(bin, slot)` cell. The engine
/// borrows each cell once per contiguous cell group and feeds it merged
/// runs directly — no intermediate buffering. The grid is generic over
/// the distribution store, so one engine serves both the exact and the
/// sketched tier; the default keeps pre-trait implementors compiling
/// unchanged.
pub trait CellGrid<D: DistributionAccumulator = FeatureHistogram> {
    /// Borrows (opening if necessary) the accumulator for `slot` at
    /// `bin`. `slot` is whatever index space the caller's ranks use
    /// (global flow for the serial plane, shard-local for shards).
    fn cell(&mut self, bin: usize, slot: usize) -> &mut BinAccumulator<D>;
}

/// The admission rules of a grid builder, hoisted out so the serial and
/// sharded planes validate batches identically.
#[derive(Debug, Clone, Copy)]
pub struct Admission {
    pub n_flows: usize,
    pub bin_secs: u64,
    pub next_emit: usize,
    pub horizon_bins: usize,
}

impl Admission {
    /// Validates one event: `Ok(None)` means late (drop and count),
    /// `Ok(Some(bin))` admits it.
    #[inline]
    pub fn admit(&self, flow: usize, timestamp: u64) -> Result<Option<usize>, StreamError> {
        if flow >= self.n_flows {
            return Err(StreamError::FlowOutOfRange {
                flow,
                n_flows: self.n_flows,
            });
        }
        let bin = (timestamp / self.bin_secs) as usize;
        if bin < self.next_emit {
            return Ok(None);
        }
        let horizon_end = self.next_emit.saturating_add(self.horizon_bins);
        if bin >= horizon_end {
            return Err(StreamError::BeyondHorizon { bin, horizon_end });
        }
        Ok(Some(bin))
    }
}

/// An event the batch paths can ingest: anything that knows its event
/// time and reduces to a weighted feature tuple.
pub trait IngestEvent {
    /// The timestamp that bins this event.
    fn event_time(&self) -> u64;
    /// The four extracted feature values, `FEATURES` order.
    fn tuple(&self) -> [u32; 4];
    /// The packet weight this event carries.
    fn weight(&self) -> u64;
    /// The byte volume this event carries.
    fn bytes(&self) -> u64;
    /// Whether two events share one flow tuple (compared on the raw
    /// fields, so the hot merge loop never materializes tuples it will
    /// not keep).
    fn same_tuple(&self, other: &Self) -> bool;
}

impl IngestEvent for entromine_net::packet::PacketHeader {
    #[inline]
    fn event_time(&self) -> u64 {
        self.timestamp
    }

    #[inline]
    fn tuple(&self) -> [u32; 4] {
        [
            self.src_ip.0,
            self.src_port as u32,
            self.dst_ip.0,
            self.dst_port as u32,
        ]
    }

    #[inline]
    fn weight(&self) -> u64 {
        1
    }

    #[inline]
    fn bytes(&self) -> u64 {
        self.bytes as u64
    }

    #[inline]
    fn same_tuple(&self, other: &Self) -> bool {
        self.src_ip == other.src_ip
            && self.src_port == other.src_port
            && self.dst_ip == other.dst_ip
            && self.dst_port == other.dst_port
    }
}

impl IngestEvent for entromine_net::flow::FlowRecord {
    /// Flow records bin by their first-packet timestamp (how collectors
    /// export, and how the paper bins).
    #[inline]
    fn event_time(&self) -> u64 {
        self.first
    }

    #[inline]
    fn tuple(&self) -> [u32; 4] {
        [
            self.key.src_ip.0,
            self.key.src_port as u32,
            self.key.dst_ip.0,
            self.key.dst_port as u32,
        ]
    }

    #[inline]
    fn weight(&self) -> u64 {
        self.packets
    }

    #[inline]
    fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The transport protocol is deliberately ignored: the accumulators
    /// never see it, so records differing only in protocol combine.
    #[inline]
    fn same_tuple(&self, other: &Self) -> bool {
        self.key.src_ip == other.key.src_ip
            && self.key.src_port == other.key.src_port
            && self.key.dst_ip == other.key.dst_ip
            && self.key.dst_port == other.key.dst_port
    }
}

/// Coordinator pre-pass: validates the whole batch (atomically — on error
/// nothing may be absorbed), counts late events, and hands every admitted
/// event's `(batch index, flow, bin)` to `sink` for rank assignment.
/// Returns the late-event count.
pub(crate) fn validate_batch<E: IngestEvent>(
    batch: &[(usize, E)],
    adm: &Admission,
    mut sink: impl FnMut(u32, usize, usize),
) -> Result<u64, StreamError> {
    let mut late = 0u64;
    for (i, &(flow, ref ev)) in batch.iter().enumerate() {
        match adm.admit(flow, ev.event_time())? {
            None => late += 1,
            Some(bin) => sink(i as u32, flow, bin),
        }
    }
    Ok(late)
}

/// Packets-per-run below which the run-merge machinery (per-event tuple
/// comparisons, run bookkeeping, and — on ungrouped batches — the rank
/// sort) costs more than its `add_n` batching saves. On a feed with no
/// duplicate `(cell, tuple)` adjacency the combining path measured 0.97×
/// against plain per-event accumulation, while at ~8 packets per run it
/// measured ~2×; the crossover sits just above 1, and this threshold
/// keeps a safety margin so [`BatchShape::combining_profitable`] only
/// engages combining where it genuinely wins.
pub const COMBINE_MIN_RATIO: f64 = 1.25;

/// What [`validate_grouped`] learned about a batch while validating it:
/// admission counts plus the shape signals that pick the cheapest
/// accumulation path.
#[derive(Debug, Clone, Copy)]
pub struct BatchShape {
    /// Late events (sealed bins) — dropped and counted, never absorbed.
    pub late: u64,
    /// Whether the admitted events' cell ranks arrive non-decreasing
    /// (per-bin batches, flow-major replays, NetFlow exports).
    pub grouped: bool,
    /// Admitted (non-late) events.
    pub admitted: u64,
    /// Maximal groups of consecutive admitted events sharing one cell
    /// *and* one feature tuple — exactly the weighted runs the merge
    /// engine would absorb. For ungrouped batches this over-counts what
    /// the sort path could still merge, making the profitability test
    /// conservative: a bail-out can only route to a path that is never
    /// slower than per-event accumulation.
    pub runs: u64,
}

impl BatchShape {
    /// Whether the run-merge machinery pays for itself on this batch:
    /// the packets-per-run ratio clears [`COMBINE_MIN_RATIO`]. When it
    /// does not, [`accumulate_per_event`] skips the merge bookkeeping
    /// (and, for ungrouped batches, the sort) entirely.
    pub fn combining_profitable(&self) -> bool {
        self.admitted as f64 >= self.runs as f64 * COMBINE_MIN_RATIO
    }
}

/// Validation pre-pass for the serial (single-stride) plane: atomic batch
/// validation plus the batch-shape probe — whether the admitted events'
/// cell ranks arrive non-decreasing (how per-bin batches, flow-major
/// replays, and NetFlow exports naturally arrive), and how many merged
/// runs the batch would reduce to. Grouped batches with enough packets
/// per run take [`accumulate_in_order`], which needs no index array and
/// no sort; ungrouped ones fall back to [`accumulate_grouped`]; and
/// batches whose packets-per-run ratio is too low for either to win take
/// [`accumulate_per_event`].
///
/// Lateness and horizon checks run as plain timestamp comparisons
/// against precomputed bin boundaries (`bin < b` ⟺ `ts < b·bin_secs` for
/// integer division), so the hot loop performs no division; the bin
/// index is derived once per cell change, not once per event.
pub fn validate_grouped<E: IngestEvent>(
    batch: &[(usize, E)],
    adm: &Admission,
    stride: usize,
) -> Result<BatchShape, StreamError> {
    let n_flows = adm.n_flows;
    let bin_secs = adm.bin_secs as u128;
    let late_below = adm.next_emit as u128 * bin_secs;
    let horizon_end = adm.next_emit.saturating_add(adm.horizon_bins);
    let horizon_ts = horizon_end as u128 * bin_secs;
    let mut late = 0u64;
    let mut admitted = 0u64;
    let mut runs = 0u64;
    let mut grouped = true;
    let mut last_rank = u64::MAX;
    // Current-cell bounds: events inside them need no division and no
    // rank update. `prev` is the previously walked admitted event — runs
    // are maximal same-cell-same-tuple segments, and segment counts are
    // direction-independent, so the backward walk counts exactly what
    // the forward merge pass would absorb.
    let mut cur_flow = usize::MAX;
    let mut cur_lo = u64::MAX;
    let mut cur_hi = 0u64;
    let mut prev: Option<&E> = None;
    // Walked back to front: validation is order-independent (forward
    // non-decreasing ranks ⟺ backward non-increasing), and ending at the
    // batch's head leaves exactly the memory the accumulation pass reads
    // first sitting warm in the cache. Errors keep scanning instead of
    // returning, so the error that surfaces is the first one in *offer*
    // order — matching [`validate_batch`]'s forward walk exactly.
    let mut error = None;
    for &(flow, ref ev) in batch.iter().rev() {
        if flow >= n_flows {
            error = Some(StreamError::FlowOutOfRange { flow, n_flows });
            continue;
        }
        let ts = ev.event_time();
        if (ts as u128) >= horizon_ts {
            error = Some(StreamError::BeyondHorizon {
                bin: (ts / adm.bin_secs) as usize,
                horizon_end,
            });
            continue;
        }
        if (ts as u128) < late_below {
            late += 1;
            continue;
        }
        admitted += 1;
        if flow == cur_flow && ts >= cur_lo && ts < cur_hi {
            if !prev.is_some_and(|p| ev.same_tuple(p)) {
                runs += 1;
            }
            prev = Some(ev);
            continue;
        }
        runs += 1;
        prev = Some(ev);
        let bin = (ts / adm.bin_secs) as usize;
        cur_flow = flow;
        cur_lo = bin as u64 * adm.bin_secs;
        cur_hi = cur_lo.saturating_add(adm.bin_secs);
        let rank = ((bin - adm.next_emit) * stride + flow) as u64;
        grouped &= rank <= last_rank;
        last_rank = rank;
    }
    match error {
        Some(e) => Err(e),
        None => Ok(BatchShape {
            late,
            grouped,
            admitted,
            runs,
        }),
    }
}

/// Accumulates a *validated, grouped* batch in one sequential pass: no
/// index array, no sort — the fast path for feeds that already arrive
/// cell-grouped. Late events are skipped in stride (they were counted
/// during validation). Each cell's accumulator is borrowed once from the
/// grid and fed its merged runs directly. Like the validator, the walk
/// divides once per cell change, never per event.
///
/// Callers must have established via [`validate_grouped`] that admitted
/// cell ranks are non-decreasing; runs of one cell are then contiguous
/// (up to interleaved late events), so adjacent-merge is complete.
pub fn accumulate_in_order<E: IngestEvent, D: DistributionAccumulator>(
    batch: &[(usize, E)],
    adm: &Admission,
    grid: &mut impl CellGrid<D>,
) {
    let late_below = adm.next_emit as u128 * adm.bin_secs as u128;
    let len = batch.len();
    let mut i = 0;
    while i < len {
        let (flow, ref ev) = batch[i];
        let ts = ev.event_time();
        if (ts as u128) < late_below {
            i += 1;
            continue;
        }
        // Open a cell: one division, then bounds comparisons only.
        let bin = (ts / adm.bin_secs) as usize;
        let lo = bin as u64 * adm.bin_secs;
        let hi = lo.saturating_add(adm.bin_secs);
        let acc = grid.cell(bin, flow);
        'cell: loop {
            // Start a run at event i (known to belong to this cell).
            let first = &batch[i].1;
            let mut weight = first.weight();
            let mut bytes = first.bytes();
            i += 1;
            let same_cell = loop {
                if i >= len {
                    break false;
                }
                let (next_flow, ref next) = batch[i];
                let nts = next.event_time();
                if (nts as u128) < late_below {
                    i += 1;
                    continue;
                }
                if next_flow != flow || nts < lo || nts >= hi {
                    break false;
                }
                if !next.same_tuple(first) {
                    break true;
                }
                weight += next.weight();
                bytes += next.bytes();
                i += 1;
            };
            acc.absorb_run(first.tuple(), weight, bytes);
            if !same_cell {
                break 'cell;
            }
        }
    }
}

/// Accumulates a *validated* batch one event at a time, in offer order:
/// the bail-out path for batches whose packets-per-run ratio is too low
/// for run merging (or sorting) to pay for itself — see
/// [`BatchShape::combining_profitable`]. No tuple comparisons, no run
/// bookkeeping, no index array; each cell is still borrowed once per
/// contiguous same-cell stretch, and late events are skipped in stride.
///
/// Works on *any* event order, grouped or not: entropy finalization is a
/// pure function of each histogram's count multiset, so per-event
/// absorption commutes and the emitted bins stay bit-identical to every
/// other path.
pub fn accumulate_per_event<E: IngestEvent, D: DistributionAccumulator>(
    batch: &[(usize, E)],
    adm: &Admission,
    grid: &mut impl CellGrid<D>,
) {
    let late_below = adm.next_emit as u128 * adm.bin_secs as u128;
    let len = batch.len();
    let mut i = 0;
    while i < len {
        let (flow, ref ev) = batch[i];
        let ts = ev.event_time();
        if (ts as u128) < late_below {
            i += 1;
            continue;
        }
        // Open a cell: one division, then bounds comparisons only.
        let bin = (ts / adm.bin_secs) as usize;
        let lo = bin as u64 * adm.bin_secs;
        let hi = lo.saturating_add(adm.bin_secs);
        let acc = grid.cell(bin, flow);
        acc.absorb_run(ev.tuple(), ev.weight(), ev.bytes());
        i += 1;
        while i < len {
            let (next_flow, ref next) = batch[i];
            let nts = next.event_time();
            if (nts as u128) < late_below {
                i += 1;
                continue;
            }
            if next_flow != flow || nts < lo || nts >= hi {
                break;
            }
            acc.absorb_run(next.tuple(), next.weight(), next.bytes());
            i += 1;
        }
    }
}

/// Rebuilds the `(rank, index)` key array for an already-validated batch
/// (the ungrouped fall-back of the serial plane): one cheap sweep, no
/// error paths, late events skipped.
pub(crate) fn rank_keys<E: IngestEvent>(
    batch: &[(usize, E)],
    adm: &Admission,
    stride: usize,
) -> Vec<(u64, u32)> {
    let mut keys = Vec::with_capacity(batch.len());
    for (i, &(flow, ref ev)) in batch.iter().enumerate() {
        let bin = (ev.event_time() / adm.bin_secs) as usize;
        if bin < adm.next_emit {
            continue;
        }
        keys.push((((bin - adm.next_emit) * stride + flow) as u64, i as u32));
    }
    keys
}

/// Sorts `(rank, index)` keys, combines each cell's events into weighted
/// runs, and feeds them to the grid cell by cell, where
/// `rank = (bin − next_emit) · stride + slot` — the general-order path
/// behind [`accumulate_in_order`]'s fast path.
pub(crate) fn accumulate_grouped<E: IngestEvent, D: DistributionAccumulator>(
    batch: &[(usize, E)],
    keys: &mut [(u64, u32)],
    stride: usize,
    next_emit: usize,
    grid: &mut impl CellGrid<D>,
) {
    keys.sort_unstable();
    let mut k = 0;
    while k < keys.len() {
        let rank = keys[k].0;
        let mut end = k + 1;
        while end < keys.len() && keys[end].0 == rank {
            end += 1;
        }
        let bin = next_emit + rank as usize / stride;
        let slot = rank as usize % stride;
        let acc = grid.cell(bin, slot);
        let mut i = k;
        while i < end {
            let first = &batch[keys[i].1 as usize].1;
            let mut weight = first.weight();
            let mut bytes = first.bytes();
            i += 1;
            while i < end {
                let next = &batch[keys[i].1 as usize].1;
                if !next.same_tuple(first) {
                    break;
                }
                weight += next.weight();
                bytes += next.bytes();
                i += 1;
            }
            acc.absorb_run(first.tuple(), weight, bytes);
        }
        k = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use entromine_net::{Ipv4, PacketHeader};

    fn pkt(src: u32, dport: u16, ts: u64) -> PacketHeader {
        PacketHeader::tcp(Ipv4(src), 1024, Ipv4(9), dport, 100, ts)
    }

    fn adm() -> Admission {
        Admission {
            n_flows: 4,
            bin_secs: 300,
            next_emit: 0,
            horizon_bins: 2016,
        }
    }

    #[test]
    fn admission_matches_builder_rules() {
        let a = adm();
        assert!(matches!(a.admit(0, 10), Ok(Some(0))));
        assert!(matches!(a.admit(3, 700), Ok(Some(2))));
        assert!(matches!(
            a.admit(4, 0),
            Err(StreamError::FlowOutOfRange { .. })
        ));
        assert!(matches!(
            a.admit(0, u64::MAX),
            Err(StreamError::BeyondHorizon { .. })
        ));
        let later = Admission {
            next_emit: 2,
            ..adm()
        };
        assert!(matches!(later.admit(0, 10), Ok(None)), "sealed bin is late");
    }

    #[test]
    fn grouped_runs_combine_equal_tuples() {
        // Interleaved cells and duplicate tuples: runs must come back
        // grouped per cell with duplicates combined.
        let batch = vec![
            (0usize, pkt(1, 80, 10)),
            (1, pkt(2, 80, 20)),
            (0, pkt(1, 80, 30)),
            (0, pkt(5, 443, 40)),
            (1, pkt(2, 80, 350)), // bin 1
        ];
        let a = adm();
        let mut keys = Vec::new();
        let late = validate_batch(&batch, &a, |idx, flow, bin| {
            keys.push((((bin * a.n_flows) + flow) as u64, idx));
        })
        .unwrap();
        assert_eq!(late, 0);
        let mut grid = MapGrid::default();
        accumulate_grouped(&batch, &mut keys, a.n_flows, 0, &mut grid);
        assert_eq!(grid.cells.len(), 3);
        // (bin 0, flow 0): two packets of tuple (1, 1024, 9, 80) combined
        // plus one of (5, ..., 443).
        let acc = &grid.cells[&(0, 0)];
        assert_eq!(acc.packets(), 3);
        assert_eq!(acc.bytes(), 300);
        assert_eq!(acc.histogram(crate::Feature::SrcIp).count(1), 2);
        assert_eq!(acc.histogram(crate::Feature::SrcIp).count(5), 1);
        assert_eq!(grid.cells[&(0, 1)].packets(), 1);
        assert_eq!(grid.cells[&(1, 1)].packets(), 1);
    }

    #[test]
    fn validation_error_matches_forward_order() {
        // Two different errors in one batch: both validators must
        // surface the earliest one in offer order, even though the
        // grouped validator walks back to front.
        let batch = vec![(9usize, pkt(1, 80, 10)), (0, pkt(2, 80, u64::MAX))];
        let a = adm();
        let fwd = validate_batch(&batch, &a, |_, _, _| {}).unwrap_err();
        let rev = validate_grouped(&batch, &a, a.n_flows).unwrap_err();
        assert_eq!(fwd, rev);
        assert!(matches!(fwd, StreamError::FlowOutOfRange { flow: 9, .. }));
    }

    #[test]
    fn batch_shape_counts_runs_and_flags_low_ratio_feeds() {
        let a = adm();
        // Every admitted event is its own run: 4 distinct tuples across
        // 2 cells → ratio 1, combining not profitable.
        let singles = vec![
            (0usize, pkt(1, 80, 10)),
            (0, pkt(2, 80, 20)),
            (1, pkt(3, 80, 30)),
            (1, pkt(4, 443, 40)),
        ];
        let shape = validate_grouped(&singles, &a, a.n_flows).unwrap();
        assert_eq!((shape.admitted, shape.runs), (4, 4));
        assert!(shape.grouped);
        assert!(!shape.combining_profitable());
        // Bursty feed: 6 packets collapse to 2 runs (ratio 3) — and a
        // late event interleaved inside a run must not split it.
        let later = Admission {
            next_emit: 1,
            ..adm()
        };
        let bursts = vec![
            (0usize, pkt(1, 80, 310)),
            (0, pkt(1, 80, 315)),
            (0, pkt(9, 80, 20)), // late: bin 0 is sealed
            (0, pkt(1, 80, 320)),
            (2, pkt(7, 443, 350)),
            (2, pkt(7, 443, 355)),
            (2, pkt(7, 443, 360)),
        ];
        let shape = validate_grouped(&bursts, &later, later.n_flows).unwrap();
        assert_eq!(shape.late, 1);
        assert_eq!((shape.admitted, shape.runs), (6, 2));
        assert!(shape.combining_profitable());
    }

    #[test]
    fn per_event_path_builds_identical_cells() {
        // Ungrouped, ratio-1 feed: the bail-out path must produce cells
        // bit-identical to the sort-based combining path.
        let a = adm();
        let batch = vec![
            (2usize, pkt(1, 80, 310)),
            (0, pkt(2, 80, 10)),
            (3, pkt(3, 443, 650)),
            (1, pkt(4, 80, 20)),
            (2, pkt(5, 80, 30)),
        ];
        let shape = validate_grouped(&batch, &a, a.n_flows).unwrap();
        assert!(!shape.grouped);
        assert!(!shape.combining_profitable());
        let mut per_event = MapGrid::default();
        accumulate_per_event(&batch, &a, &mut per_event);
        let mut keys = rank_keys(&batch, &a, a.n_flows);
        let mut sorted = MapGrid::default();
        accumulate_grouped(&batch, &mut keys, a.n_flows, a.next_emit, &mut sorted);
        assert_eq!(per_event.cells.len(), sorted.cells.len());
        for (k, acc) in &per_event.cells {
            assert_eq!(acc.summarize(), sorted.cells[k].summarize(), "cell {k:?}");
        }
    }

    #[test]
    fn in_order_matches_sorted_path() {
        // Grouped input incl. interleaved late events: the in-order walk
        // and the sort-based walk must build identical cells.
        let a = Admission {
            next_emit: 1,
            ..adm()
        };
        let batch = vec![
            (2usize, pkt(1, 80, 310)),
            (2, pkt(1, 80, 315)),
            (0, pkt(9, 80, 20)), // late (bin 0 sealed)
            (2, pkt(3, 443, 320)),
            (3, pkt(4, 80, 350)),
            (3, pkt(4, 80, 650)), // bin 2
        ];
        let shape = validate_grouped(&batch, &a, a.n_flows).unwrap();
        assert_eq!(shape.late, 1);
        assert!(shape.grouped);
        let mut in_order = MapGrid::default();
        accumulate_in_order(&batch, &a, &mut in_order);
        let mut keys = rank_keys(&batch, &a, a.n_flows);
        let mut sorted = MapGrid::default();
        accumulate_grouped(&batch, &mut keys, a.n_flows, a.next_emit, &mut sorted);
        assert_eq!(in_order.cells.len(), sorted.cells.len());
        for (k, acc) in &in_order.cells {
            let other = &sorted.cells[k];
            assert_eq!(acc.summarize(), other.summarize(), "cell {k:?}");
        }
        // The combined runs really combined: cell (1, 2) saw tuple
        // (1, 1024, 9, 80) twice.
        assert_eq!(
            in_order.cells[&(1, 2)]
                .histogram(crate::Feature::SrcIp)
                .count(1),
            2
        );
    }

    /// A trivially inspectable grid for engine tests.
    #[derive(Default)]
    struct MapGrid {
        cells: std::collections::BTreeMap<(usize, usize), crate::accum::BinAccumulator>,
    }

    impl CellGrid for MapGrid {
        fn cell(&mut self, bin: usize, slot: usize) -> &mut crate::accum::BinAccumulator {
            self.cells.entry((bin, slot)).or_default()
        }
    }
}
