//! The bounded-memory sketched tier: hash-space level sampling with
//! Horvitz–Thompson entropy estimation.
//!
//! The exact tier holds one table entry per distinct feature value, which
//! at the ROADMAP's "millions of users" scale means hundreds of megabytes
//! of open-bin histograms. [`SketchHistogram`] caps that: it retains at
//! most a budgeted number of *surviving* keys and estimates entropy from
//! them, trading a documented error bound for a hard memory ceiling.
//!
//! # The sketch
//!
//! Survival is decided by the same deterministic Fx multiply the flat
//! table hashes with: a key `v` survives **level** `L` iff the low `L`
//! bits of `hash(v) >> 32` are zero, so each level samples the key space
//! with probability `q = 2^−L` and level-`L+1` survivors are a subset of
//! level-`L` survivors (the admission mask only grows). The sketch starts
//! at level 0 (exact) and raises the level — evicting non-survivors —
//! whenever the survivor table would exceed `budget` distinct keys.
//!
//! Monotone admission gives the two properties everything else stands on:
//!
//! * **Exact survivor counts.** A key surviving at the final level was
//!   admitted at every earlier level too, so every one of its offers was
//!   recorded: retained counts are exact, never approximate.
//! * **Order independence.** The final level is the smallest `L` at which
//!   the offered key set has ≤ `budget` survivors — a pure function of
//!   the offered multiset, however it was ordered, batched, merged, or
//!   sharded. The whole sketch state is therefore a pure function of the
//!   multiset (for a fixed budget), and the sketched ingest plane
//!   inherits the exact plane's bit-identity contract: serial, batched,
//!   and sharded sketched builders emit identical rows.
//!
//! At level 0 the sketch *is* the exact histogram and finalizes through
//! the identical floating-point path, bit for bit.
//!
//! # Entropy estimate and error bound
//!
//! With survivor counts `n_i` sampled at rate `q`, the correction sum
//! `T = Σ n_i·log2(n_i)` over the full population is estimated by the
//! Horvitz–Thompson scaling `T̂ = (Σ_surv n_i·log2 n_i) / q`, which is
//! unbiased over the admission randomness, and entropy by
//! `Ĥ = log2(S) − T̂/S` (clamped at 0) with the *exact* total `S`.
//! `Var(T̂) = ((1−q)/q)·Σ_pop f_i²` with `f_i = n_i·log2(n_i)`, so
//!
//! ```text
//! σ(Ĥ) = sqrt((1−q)/q · Σ_pop f_i²) / S
//! ```
//!
//! **Documented bound:** `|Ĥ − H| ≤ 0.05 + 4·σ(Ĥ)` bits (exactly 0 at
//! level 0). The additive floor absorbs estimator noise when `T` is tiny;
//! the `4σ` term is Chebyshev-style slack under the approximation that
//! the fixed multiplicative hash behaves like an independent `q`-sampler
//! (for the consecutive-integer runs real feature values arrive in, the
//! multiply equidistributes admission, which empirically *lowers* the
//! variance). The suite in `crates/entropy/tests/sketch_equivalence.rs`
//! pins this bound against the exact plane on fixed and property-based
//! feeds; [`error_bound_against`](SketchHistogram::error_bound_against)
//! evaluates it from exact counts, and
//! [`entropy_stderr`](SketchHistogram::entropy_stderr) self-reports the
//! HT estimate of `σ` when no exact plane is at hand. The bound is loose
//! exactly where a sketch is the wrong tool — one heavy hitter carrying
//! most of `S` — and tight on the dispersed distributions (scans, sprays)
//! the detectors care about; all-singleton histograms are estimated
//! *exactly* (`T = T̂ = 0`).
//!
//! # Memory ceiling
//!
//! The survivor table is a [`FeatureHistogram`] (12 bytes/slot, load
//! ≤ 1/2, 4× growth), the level bump evicts as soon as `budget` is
//! exceeded, and merges shrink incrementally, so the slot count never
//! exceeds `8·(budget+1)` even transiently — with a floor of the flat
//! table's 32-slot minimum allocation, which dominates for tiny budgets:
//! [`heap_ceiling`](SketchHistogram::heap_ceiling) =
//! `max(384, 96·(budget+1))` bytes per sketch. A `(flow, bin)` cell holds four sketches; the bench
//! records measured peaks next to this ceiling in
//! `results/BENCH_pipeline.json`.

use crate::dist::DistributionAccumulator;
use crate::hist::{fx_hash, FeatureHistogram};
use crate::metrics::{count_term, sample_entropy, sorted_groups, weighted_term_sum};

/// Default survivor budget: 4096 keys ≈ 384 KB ceiling per sketch.
pub const DEFAULT_BUDGET: usize = 4096;

/// The deepest sampling level (`q = 2^−32`); beyond this every remaining
/// `u32` key space is expected to yield ~1 survivor, so raising further
/// cannot help.
const MAX_LEVEL: u32 = 32;

/// Construction parameters of the sketched tier: the survivor-key budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchParams {
    /// Maximum number of distinct keys the survivor table may retain.
    /// Clamped to at least 1 at construction.
    pub budget: usize,
}

impl Default for SketchParams {
    fn default() -> Self {
        SketchParams {
            budget: DEFAULT_BUDGET,
        }
    }
}

/// A bounded-memory distribution store: hash-space level sampling over a
/// flat survivor table, with Horvitz–Thompson entropy estimation. See the
/// [module docs](self) for the sampling scheme, the order-independence
/// argument, the error bound, and the memory ceiling.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchHistogram {
    /// Surviving keys with their exact counts.
    table: FeatureHistogram,
    /// Current sampling level; admission probability is `2^−level`.
    level: u32,
    /// Survivor-key budget (≥ 1).
    budget: usize,
    /// Exact total of all offered weight, survivors or not.
    total: u64,
}

impl Default for SketchHistogram {
    fn default() -> Self {
        Self::new(SketchParams::default())
    }
}

impl SketchHistogram {
    /// An empty sketch with the given parameters (no allocation).
    pub fn new(params: SketchParams) -> Self {
        SketchHistogram {
            table: FeatureHistogram::new(),
            level: 0,
            budget: params.budget.max(1),
            total: 0,
        }
    }

    /// Whether `value` survives sampling at `level`.
    #[inline]
    fn admitted_at(level: u32, value: u32) -> bool {
        let mask = (1u64 << level) - 1;
        (fx_hash(value) >> 32) & mask == 0
    }

    /// Whether `value` survives at the current level.
    #[inline]
    fn admits(&self, value: u32) -> bool {
        Self::admitted_at(self.level, value)
    }

    /// Records `weight` observations of `value`. The total is always
    /// counted; the table only sees surviving keys.
    #[inline]
    pub fn offer_n(&mut self, value: u32, weight: u64) {
        if weight == 0 {
            return;
        }
        self.total += weight;
        if !self.admits(value) {
            return;
        }
        self.table.add_n(value, weight);
        if self.table.distinct() > self.budget {
            self.shrink_to_budget();
        }
    }

    /// Raises the level until the survivor table fits the budget,
    /// evicting newly non-surviving keys.
    #[cold]
    fn shrink_to_budget(&mut self) {
        while self.table.distinct() > self.budget && self.level < MAX_LEVEL {
            self.level += 1;
            let kept: Vec<(u32, u64)> = self
                .table
                .iter()
                .filter(|&(v, _)| Self::admitted_at(self.level, v))
                .collect();
            let mut next = FeatureHistogram::with_capacity(kept.len());
            for (v, n) in kept {
                next.add_n(v, n);
            }
            self.table = next;
        }
    }

    /// Merges another sketch of the same budget, as if its offers had
    /// been replayed here. The result is the sketch of the combined
    /// multiset — independent of how the traffic was split (this is what
    /// makes the sketched sharded plane bit-identical to the serial one).
    pub fn merge_from(&mut self, other: &SketchHistogram) {
        debug_assert_eq!(
            self.budget, other.budget,
            "sketches merge only within one tier configuration"
        );
        self.total += other.total;
        if other.level > self.level {
            self.level = other.level;
            // Re-filter our own survivors under the deeper level.
            let kept: Vec<(u32, u64)> = self
                .table
                .iter()
                .filter(|&(v, _)| Self::admitted_at(self.level, v))
                .collect();
            let mut next = FeatureHistogram::with_capacity(kept.len());
            for (v, n) in kept {
                next.add_n(v, n);
            }
            self.table = next;
        }
        // Monotone admission makes mid-merge shrinks safe: a key the
        // deeper level would evict is simply never admitted below.
        for (v, n) in other.table.iter() {
            if self.admits(v) {
                self.table.add_n(v, n);
                if self.table.distinct() > self.budget {
                    self.shrink_to_budget();
                }
            }
        }
    }

    /// Exact total weight offered (survivors or not).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Current sampling level `L`; the sketch retains keys with
    /// probability `2^−L`. Level 0 means no eviction has happened and the
    /// sketch is exact.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The survivor-key budget this sketch was configured with.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of distinct keys currently retained (≤ budget, except
    /// transiently inside an offer).
    pub fn retained(&self) -> usize {
        self.table.distinct()
    }

    /// Inverse inclusion probability `1/q = 2^level` (exact in `f64` for
    /// every admissible level).
    pub fn scale(&self) -> f64 {
        (1u64 << self.level) as f64
    }

    /// Horvitz–Thompson estimate of the number of distinct values in the
    /// population.
    pub fn distinct_estimate(&self) -> f64 {
        self.table.distinct() as f64 * self.scale()
    }

    /// The estimated sample entropy, in bits.
    ///
    /// At level 0 this routes through the *identical* floating-point
    /// sequence as the exact tier ([`sample_entropy`]) and is bit-equal
    /// to it. At deeper levels the correction sum over survivors is
    /// scaled by `2^level` (exact: a power-of-two multiply) before the
    /// same `log2(S) − T/S` closing step.
    pub fn entropy(&self) -> f64 {
        if self.level == 0 {
            return sample_entropy(&self.table);
        }
        if self.total == 0 {
            return 0.0;
        }
        let counts = self.table.counts_sorted();
        let t = weighted_term_sum(sorted_groups(&counts)) * self.scale();
        let s = self.total as f64;
        (s.log2() - t / s).max(0.0)
    }

    /// Self-reported standard error of [`entropy`](Self::entropy): the
    /// Horvitz–Thompson variance estimate computed from the survivors
    /// (0 at level 0, where the sketch is exact). An *estimate* — when
    /// the exact plane is available, prefer
    /// [`error_bound_against`](Self::error_bound_against).
    pub fn entropy_stderr(&self) -> f64 {
        if self.level == 0 || self.total == 0 {
            return 0.0;
        }
        let q = 1.0 / self.scale();
        // E[Σ_surv f_i²·(1−q)/q²] = Σ_pop f_i²·(1−q)/q = Var(T̂).
        let factor = (1.0 - q) / (q * q);
        let counts = self.table.counts_sorted();
        let mut var = 0.0;
        for &c in &counts {
            if c > 1 {
                let f = count_term(c);
                var += factor * f * f;
            }
        }
        var.sqrt() / self.total as f64
    }

    /// The additive floor of the documented error bound, in bits.
    pub const ERROR_FLOOR_BITS: f64 = 0.05;

    /// The sigma multiplier of the documented error bound.
    pub const ERROR_SIGMAS: f64 = 4.0;

    /// The documented error bound evaluated against the exact plane:
    /// `0.05 + 4·σ(Ĥ)` bits with `σ` computed from the **exact** counts
    /// (see the [module docs](self)), and exactly 0 at level 0, where the
    /// sketch must be bit-identical. The equivalence suite, the CI smoke
    /// run, and the bench all assert
    /// `|entropy() − sample_entropy(exact)| ≤ error_bound_against(exact)`.
    pub fn error_bound_against(&self, exact: &FeatureHistogram) -> f64 {
        if self.level == 0 {
            return 0.0;
        }
        let q = 1.0 / self.scale();
        let factor = (1.0 - q) / q;
        let counts = exact.counts_sorted();
        let mut var = 0.0;
        for &c in &counts {
            if c > 1 {
                let f = count_term(c);
                var += factor * f * f;
            }
        }
        let sigma = var.sqrt() / exact.total().max(1) as f64;
        Self::ERROR_FLOOR_BITS + Self::ERROR_SIGMAS * sigma
    }

    /// Bytes of heap currently owned by the survivor table.
    pub fn heap_bytes(&self) -> usize {
        self.table.heap_bytes()
    }

    /// The worst-case heap a sketch of `budget` can own, even transiently
    /// inside an offer or merge: the survivor table never exceeds
    /// `budget + 1` distinct keys before a shrink rebuilds it, and the
    /// flat table grows 4× at load 1/2, so the slot count stays under
    /// `8·(budget+1)` — 96 bytes of columns per budgeted key, floored at
    /// the table's 32-slot (384-byte) minimum allocation.
    pub fn heap_ceiling(budget: usize) -> usize {
        (96 * (budget.max(1) + 1)).max(384)
    }

    /// Exact count of a retained key (0 if evicted or never offered —
    /// indistinguishable by design).
    pub fn count(&self, value: u32) -> u64 {
        if self.admits(value) {
            self.table.count(value)
        } else {
            0
        }
    }

    /// Iterates over retained `(value, count)` pairs in unspecified
    /// order; counts are exact.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.table.iter()
    }

    /// The `k` most frequent *retained* values, most frequent first, ties
    /// broken by value — the same deterministic order as the exact
    /// tier's [`FeatureHistogram::top_k`], so sketched-vs-exact
    /// attribution comparisons are stable. Heavy hitters appear iff they
    /// survive sampling; survivors report exact counts.
    pub fn top_k(&self, k: usize) -> Vec<(u32, u64)> {
        self.table.top_k(k)
    }
}

impl DistributionAccumulator for SketchHistogram {
    type Params = SketchParams;

    fn with_params(params: &SketchParams, capacity_hint: usize) -> Self {
        let mut s = SketchHistogram::new(*params);
        if capacity_hint > 0 {
            s.table = FeatureHistogram::with_capacity(capacity_hint.min(s.budget));
        }
        s
    }

    #[inline]
    fn offer_n(&mut self, value: u32, weight: u64) {
        SketchHistogram::offer_n(self, value, weight);
    }

    fn merge_from(&mut self, other: &Self) {
        SketchHistogram::merge_from(self, other);
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn size_hint(&self) -> usize {
        self.table.distinct()
    }

    fn entropy(&self) -> f64 {
        SketchHistogram::entropy(self)
    }

    fn entropy_stderr(&self) -> f64 {
        SketchHistogram::entropy_stderr(self)
    }

    fn heap_bytes(&self) -> usize {
        SketchHistogram::heap_bytes(self)
    }

    fn retained_entries(&self) -> Vec<(u32, u64)> {
        self.iter().collect()
    }

    fn scale(&self) -> f64 {
        SketchHistogram::scale(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch(budget: usize) -> SketchHistogram {
        SketchHistogram::new(SketchParams { budget })
    }

    #[test]
    fn under_budget_is_exact_level_zero() {
        let mut sk = sketch(64);
        let mut exact = FeatureHistogram::new();
        for v in 0..50u32 {
            sk.offer_n(v, (v as u64 % 3) + 1);
            exact.add_n(v, (v as u64 % 3) + 1);
        }
        assert_eq!(sk.level(), 0);
        assert_eq!(sk.total(), exact.total());
        assert_eq!(sk.retained(), 50);
        // Bit-identical entropy at level 0.
        assert_eq!(sk.entropy(), sample_entropy(&exact));
        assert_eq!(sk.entropy_stderr(), 0.0);
        assert_eq!(sk.error_bound_against(&exact), 0.0);
        assert_eq!(sk.count(7), exact.count(7));
    }

    #[test]
    fn over_budget_raises_level_and_keeps_survivors_exact() {
        let mut sk = sketch(100);
        for v in 0..10_000u32 {
            sk.offer_n(v, (v as u64 % 5) + 1);
        }
        assert!(sk.level() > 0, "10k keys into a 100-key budget must evict");
        assert!(sk.retained() <= 100);
        assert_eq!(sk.total(), (0..10_000u64).map(|v| (v % 5) + 1).sum::<u64>());
        // Survivor counts are exact: monotone admission never dropped one
        // of a surviving key's offers.
        for (v, n) in sk.iter() {
            assert_eq!(n, (v as u64 % 5) + 1, "survivor {v} count");
        }
        // Survivorship is exactly the admission predicate at the final
        // level.
        for v in 0..10_000u32 {
            let expected = SketchHistogram::admitted_at(sk.level(), v);
            assert_eq!(sk.count(v) > 0, expected, "key {v}");
        }
    }

    #[test]
    fn state_is_a_pure_function_of_the_multiset() {
        // Same multiset, three very different histories: offer order
        // reversed, weights split into unit offers, and a two-way merge.
        let entries: Vec<(u32, u64)> = (0..3000u32).map(|v| (v * 7, (v as u64 % 4) + 1)).collect();

        let mut fwd = sketch(128);
        for &(v, n) in &entries {
            fwd.offer_n(v, n);
        }
        let mut rev = sketch(128);
        for &(v, n) in entries.iter().rev() {
            for _ in 0..n {
                rev.offer_n(v, 1);
            }
        }
        let mut left = sketch(128);
        let mut right = sketch(128);
        for (i, &(v, n)) in entries.iter().enumerate() {
            if i % 2 == 0 {
                left.offer_n(v, n);
            } else {
                right.offer_n(v, n);
            }
        }
        left.merge_from(&right);

        assert_eq!(fwd, rev);
        assert_eq!(fwd, left);
        // Estimates are bit-identical too, not merely close.
        assert_eq!(fwd.entropy(), rev.entropy());
        assert_eq!(fwd.entropy(), left.entropy());
        assert_eq!(fwd.entropy_stderr(), left.entropy_stderr());
    }

    #[test]
    fn singleton_floods_are_estimated_exactly() {
        // A scan: every key once. T = 0 on both sides, so the estimate is
        // exactly log2(S) — error 0 despite deep eviction.
        let mut sk = sketch(64);
        let mut exact = FeatureHistogram::new();
        for v in 0..100_000u32 {
            sk.offer_n(v, 1);
            exact.add(v);
        }
        assert!(sk.level() > 0);
        assert_eq!(sk.entropy(), sample_entropy(&exact));
    }

    #[test]
    fn entropy_error_within_documented_bound() {
        // A mixed zipf-ish feed, far over budget.
        let mut sk = sketch(256);
        let mut exact = FeatureHistogram::new();
        for v in 0..50_000u32 {
            let n = 1 + (v as u64 % 7) * (v as u64 % 11);
            sk.offer_n(v, n);
            exact.add_n(v, n);
        }
        assert!(sk.level() >= 5);
        let err = (sk.entropy() - sample_entropy(&exact)).abs();
        let bound = sk.error_bound_against(&exact);
        assert!(err <= bound, "err {err} > bound {bound}");
    }

    #[test]
    fn heap_stays_under_ceiling() {
        for budget in [1usize, 16, 100, 1024] {
            let mut sk = sketch(budget);
            let mut peak = 0usize;
            for v in 0..200_000u32 {
                sk.offer_n(v.wrapping_mul(2_654_435_761), 1 + (v as u64 & 3));
                peak = peak.max(sk.heap_bytes());
            }
            assert!(
                peak <= SketchHistogram::heap_ceiling(budget),
                "budget {budget}: peak {peak} > ceiling {}",
                SketchHistogram::heap_ceiling(budget)
            );
            assert!(sk.retained() <= budget);
        }
    }

    #[test]
    fn merge_respects_ceiling_and_multiset() {
        let mut parts: Vec<SketchHistogram> = Vec::new();
        let mut whole = sketch(64);
        for p in 0..8u32 {
            let mut s = sketch(64);
            for v in 0..5_000u32 {
                let key = p * 5_000 + v;
                s.offer_n(key, (key as u64 % 3) + 1);
                whole.offer_n(key, (key as u64 % 3) + 1);
            }
            parts.push(s);
        }
        let mut merged = sketch(64);
        let mut peak = 0usize;
        for p in &parts {
            merged.merge_from(p);
            peak = peak.max(merged.heap_bytes());
        }
        assert_eq!(merged, whole);
        assert_eq!(merged.entropy(), whole.entropy());
        assert!(peak <= SketchHistogram::heap_ceiling(64));
    }

    #[test]
    fn max_key_participates_like_any_other() {
        // u32::MAX lives in the flat table's side counter; the sketch
        // must admit, count, and merge it like any other key.
        let mut a = sketch(8);
        a.offer_n(u32::MAX, 5);
        let mut b = sketch(8);
        b.offer_n(u32::MAX, 3);
        b.offer_n(1, 1);
        a.merge_from(&b);
        if a.count(u32::MAX) > 0 {
            assert_eq!(a.count(u32::MAX), 8);
        }
        assert_eq!(a.total(), 9);
    }

    #[test]
    fn zero_weight_is_a_no_op() {
        let mut sk = sketch(8);
        sk.offer_n(3, 0);
        assert_eq!(sk.total(), 0);
        assert_eq!(sk.entropy(), 0.0);
        assert_eq!(sk.entropy_stderr(), 0.0);
    }

    #[test]
    fn distinct_estimate_tracks_population() {
        let mut sk = sketch(512);
        for v in 0..100_000u32 {
            sk.offer_n(v, 1);
        }
        let est = sk.distinct_estimate();
        // Multiplicative-hash level sampling over a consecutive run is
        // near-perfectly equidistributed; 15% slack is generous.
        assert!(
            (est - 100_000.0).abs() < 15_000.0,
            "distinct estimate {est} far from 100000"
        );
    }

    #[test]
    fn budget_is_clamped_to_one() {
        let mut sk = sketch(0);
        assert_eq!(sk.budget(), 1);
        for v in 0..1000u32 {
            sk.offer_n(v, 2);
        }
        assert!(sk.retained() <= 1);
        assert_eq!(sk.total(), 2000);
    }
}
