//! SIMD kernels for this crate's two hottest loops, dispatched through
//! the shared backend selection in [`entromine_linalg::kernel`] (one
//! process always runs one backend across the whole pipeline, and the
//! `ENTROMINE_FORCE_SCALAR` override pins everything at once).
//!
//! * [`probe`] — the flat histogram's linear probe walk
//!   ([`FeatureHistogram`](crate::FeatureHistogram) insert/lookup/rehash
//!   all funnel through it). The SIMD variants compare eight (AVX2) or
//!   four (SSE2) key slots per step against the sought key and the
//!   vacancy marker simultaneously and pick the first match in probe
//!   order, so the returned slot — and therefore the table's entire
//!   layout history — is **semantics-exact** against the scalar walk:
//!   same slot, every time, on every backend.
//! * [`term_sum`] — the `Σ multiplicity · (c · log2 c)` reduction behind
//!   every entropy finalization. The AVX2 variant runs four independent
//!   Neumaier-compensated accumulator lanes (branchless magnitude
//!   comparison), which breaks the serial dependency chain of the scalar
//!   reference. Compensated reductions are reassociated across lanes, so
//!   this kernel is **tolerance-pinned** (each path is within an ulp or
//!   so of the exact sum; the equivalence suite pins them to 1e-13
//!   relative), while any *fixed* backend remains a deterministic pure
//!   function of the group sequence — merge-order independence within a
//!   run is untouched.
//!
//! The `*_on` seams take an explicit [`Backend`] so the equivalence
//! suite can pit every implementation the host supports against the
//! scalar reference in one process.

// The unsafe here is confined to the feature-gated SIMD bodies and their
// call sites, each justified by runtime detection at the dispatcher.
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use crate::metrics::{count_term, neumaier};
pub use entromine_linalg::kernel::Backend;
use entromine_linalg::kernel::{active_backend, available_backends};

/// Outcome of a probe walk over the flat table's key column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// The sought key lives in this slot.
    Hit(usize),
    /// The key is absent; this is the first vacant slot in probe order
    /// (where an insert must land).
    Vacant(usize),
}

/// Walks the probe sequence from `start`, returning the first slot that
/// either holds `stored` or is vacant, on the process-wide backend.
///
/// `keys` must have power-of-two length and contain at least one vacant
/// slot (the table grows at half full, so this always holds), and
/// `stored` must be nonzero (the vacancy marker is reserved).
#[inline]
pub fn probe(keys: &[u32], start: usize, stored: u32) -> ProbeResult {
    probe_on(active_backend(), keys, start, stored)
}

/// [`probe`] on an explicit backend (the equivalence-test seam).
#[inline]
pub fn probe_on(backend: Backend, keys: &[u32], start: usize, stored: u32) -> ProbeResult {
    debug_assert!(keys.len().is_power_of_two());
    debug_assert_ne!(stored, 0);
    debug_assert!(keys.contains(&0), "probe needs a vacant slot");
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Backend::Avx2`/`Sse2` are only ever handed out by
        // `active_backend`/`available_backends` after runtime detection.
        Backend::Avx2 => unsafe { avx2_probe(keys, start, stored) },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { sse2_probe(keys, start, stored) },
        _ => scalar_probe(keys, start, stored),
    }
}

/// The pinned scalar reference: one slot per step, wrapping through the
/// power-of-two mask.
fn scalar_probe(keys: &[u32], start: usize, stored: u32) -> ProbeResult {
    let mask = keys.len() - 1;
    let mut i = start;
    loop {
        let j = i & mask;
        let k = keys[j];
        if k == stored {
            return ProbeResult::Hit(j);
        }
        if k == 0 {
            return ProbeResult::Vacant(j);
        }
        i += 1;
    }
}

/// AVX2 probe: eight slots per step. Both comparisons (sought key,
/// vacancy) come from the same load, and the first set bit of the
/// combined movemask is the first matching slot in probe order — the
/// exact slot the scalar walk returns. Groups shorter than eight slots
/// at the table's edge fall back to the scalar walk for those few slots
/// before wrapping (capacity is ≥ 32, so the wrap is rare and short).
///
/// # Safety
/// Caller must ensure the CPU supports AVX2. (Slot accesses are bounds-
/// guarded; the contract matches [`probe`] otherwise.)
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn avx2_probe(keys: &[u32], start: usize, stored: u32) -> ProbeResult {
    use std::arch::x86_64::*;
    let len = keys.len();
    let mask = len - 1;
    let target = _mm256_set1_epi32(stored as i32);
    let zero = _mm256_setzero_si256();
    let mut j = start & mask;
    loop {
        if j + 8 <= len {
            // SAFETY: j + 8 <= len, so all eight lanes are in bounds.
            let v = unsafe { _mm256_loadu_si256(keys.as_ptr().add(j).cast()) };
            let eq = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, target))) as u32;
            let vac = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, zero))) as u32;
            let both = eq | vac;
            if both != 0 {
                let lane = both.trailing_zeros();
                let slot = j + lane as usize;
                return if eq & (1 << lane) != 0 {
                    ProbeResult::Hit(slot)
                } else {
                    ProbeResult::Vacant(slot)
                };
            }
            j += 8;
            if j == len {
                j = 0;
            }
        } else {
            while j < len {
                let k = keys[j];
                if k == stored {
                    return ProbeResult::Hit(j);
                }
                if k == 0 {
                    return ProbeResult::Vacant(j);
                }
                j += 1;
            }
            j = 0;
        }
    }
}

/// SSE2 probe: four slots per step, otherwise identical in structure and
/// semantics to [`avx2_probe`].
///
/// # Safety
/// Caller must ensure the CPU supports SSE2 (baseline on x86-64).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn sse2_probe(keys: &[u32], start: usize, stored: u32) -> ProbeResult {
    use std::arch::x86_64::*;
    let len = keys.len();
    let mask = len - 1;
    let target = _mm_set1_epi32(stored as i32);
    let zero = _mm_setzero_si128();
    let mut j = start & mask;
    loop {
        if j + 4 <= len {
            // SAFETY: j + 4 <= len, so all four lanes are in bounds.
            let v = unsafe { _mm_loadu_si128(keys.as_ptr().add(j).cast()) };
            let eq = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, target))) as u32;
            let vac = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, zero))) as u32;
            let both = eq | vac;
            if both != 0 {
                let lane = both.trailing_zeros();
                let slot = j + lane as usize;
                return if eq & (1 << lane) != 0 {
                    ProbeResult::Hit(slot)
                } else {
                    ProbeResult::Vacant(slot)
                };
            }
            j += 4;
            if j == len {
                j = 0;
            }
        } else {
            while j < len {
                let k = keys[j];
                if k == stored {
                    return ProbeResult::Hit(j);
                }
                if k == 0 {
                    return ProbeResult::Vacant(j);
                }
                j += 1;
            }
            j = 0;
        }
    }
}

/// How many weighted terms are buffered before each SIMD reduction pass.
const CHUNK: usize = 256;

/// `Σ multiplicity · (c · log2 c)` over `(count, multiplicity)` groups on
/// the process-wide backend. Singleton counts (`c <= 1`) contribute
/// exactly zero on every path.
#[inline]
pub fn term_sum(groups: impl Iterator<Item = (u64, u64)>) -> f64 {
    term_sum_on(active_backend(), groups)
}

/// [`term_sum`] on an explicit backend (the equivalence-test seam).
/// SSE2 shares the scalar reference — a two-lane compensated reduction
/// is not worth a third floating-point sequence to pin.
pub fn term_sum_on(backend: Backend, groups: impl Iterator<Item = (u64, u64)>) -> f64 {
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => avx2_term_sum(groups),
        _ => scalar_term_sum(groups),
    }
}

/// The pinned scalar reference: sequential Neumaier compensation in
/// group order (this is byte-for-byte the reduction the crate used
/// before the kernel tier existed).
fn scalar_term_sum(groups: impl Iterator<Item = (u64, u64)>) -> f64 {
    let mut sum = 0.0;
    let mut comp = 0.0;
    for (c, multiplicity) in groups {
        if c > 1 {
            neumaier(&mut sum, &mut comp, multiplicity as f64 * count_term(c));
        }
    }
    sum + comp
}

/// AVX2 `term_sum`: terms are buffered [`CHUNK`] at a time (the term
/// products themselves are one L1 table load and a multiply — the serial
/// bottleneck is the compensated add chain), then reduced on four
/// independent Neumaier lanes. Lane and remainder accumulators are
/// merged with one final scalar compensation pass.
#[cfg(target_arch = "x86_64")]
fn avx2_term_sum(groups: impl Iterator<Item = (u64, u64)>) -> f64 {
    let mut terms = [0.0f64; CHUNK];
    let mut sum4 = [0.0f64; 4];
    let mut comp4 = [0.0f64; 4];
    // Scalar accumulator for the final sub-lane-width tail.
    let mut rsum = 0.0;
    let mut rcomp = 0.0;
    let mut filled = 0;
    for (c, multiplicity) in groups {
        if c <= 1 {
            continue;
        }
        terms[filled] = multiplicity as f64 * count_term(c);
        filled += 1;
        if filled == CHUNK {
            // SAFETY: this path is only dispatched on hosts where AVX2
            // was runtime-detected.
            unsafe { avx2_neumaier_lanes(&terms, &mut sum4, &mut comp4) };
            filled = 0;
        }
    }
    let quads = filled - filled % 4;
    // SAFETY: as above — AVX2 is runtime-detected on this path.
    unsafe { avx2_neumaier_lanes(&terms[..quads], &mut sum4, &mut comp4) };
    for &t in &terms[quads..filled] {
        neumaier(&mut rsum, &mut rcomp, t);
    }
    let mut sum = 0.0;
    let mut comp = 0.0;
    for (s, c) in sum4.into_iter().zip(comp4) {
        neumaier(&mut sum, &mut comp, s);
        comp += c;
    }
    neumaier(&mut sum, &mut comp, rsum);
    comp += rcomp;
    sum + comp
}

/// Folds `terms` (length a multiple of four) into four running Neumaier
/// lanes. The compensation branch is computed branchlessly: the operands
/// are ordered by magnitude with a compare-and-blend, after which the
/// error term is always `(big − total) + small`.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2, and `terms.len() % 4 == 0`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn avx2_neumaier_lanes(terms: &[f64], sum4: &mut [f64; 4], comp4: &mut [f64; 4]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(terms.len() % 4, 0);
    // SAFETY: the `[f64; 4]` accumulators are exactly one vector wide,
    // and every load below stays within `terms` (length a multiple of
    // four by the caller's contract).
    unsafe {
        let mut s = _mm256_loadu_pd(sum4.as_ptr());
        let mut comp = _mm256_loadu_pd(comp4.as_ptr());
        let abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffff));
        for quad in terms.chunks_exact(4) {
            let t = _mm256_loadu_pd(quad.as_ptr());
            let total = _mm256_add_pd(s, t);
            let swap =
                _mm256_cmp_pd::<_CMP_LT_OQ>(_mm256_and_pd(s, abs_mask), _mm256_and_pd(t, abs_mask));
            let big = _mm256_blendv_pd(s, t, swap);
            let small = _mm256_blendv_pd(t, s, swap);
            let err = _mm256_add_pd(_mm256_sub_pd(big, total), small);
            comp = _mm256_add_pd(comp, err);
            s = total;
        }
        _mm256_storeu_pd(sum4.as_mut_ptr(), s);
        _mm256_storeu_pd(comp4.as_mut_ptr(), comp);
    }
}

/// The backends this host can run (re-exported seam for the equivalence
/// suite, so entropy tests need no direct linalg dev-dependency).
pub fn probe_backends() -> Vec<Backend> {
    available_backends()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny table with a known layout: capacity 32, keys 5 and 9
    /// placed by the scalar walk.
    fn tiny_table() -> Vec<u32> {
        let mut keys = vec![0u32; 32];
        for stored in [5u32, 9, 37] {
            let start = (stored as u64).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95) as usize;
            match scalar_probe(&keys, start, stored) {
                ProbeResult::Vacant(j) => keys[j] = stored,
                ProbeResult::Hit(_) => unreachable!("fresh key"),
            }
        }
        keys
    }

    #[test]
    fn probe_backends_agree_on_slots() {
        let keys = tiny_table();
        for backend in probe_backends() {
            for stored in [5u32, 9, 37, 11, 1] {
                let start = (stored as u64).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95) as usize;
                assert_eq!(
                    probe_on(backend, &keys, start, stored),
                    scalar_probe(&keys, start, stored),
                    "backend {backend:?}, key {stored}"
                );
            }
        }
    }

    #[test]
    fn probe_wraps_at_table_end() {
        // Force a cluster at the very end of the table so the walk must
        // wrap to slot 0.
        let mut keys = vec![0u32; 32];
        keys[29] = 3;
        keys[30] = 7;
        keys[31] = 11;
        keys[0] = 13;
        for backend in probe_backends() {
            assert_eq!(probe_on(backend, &keys, 29, 11), ProbeResult::Hit(31));
            assert_eq!(probe_on(backend, &keys, 29, 13), ProbeResult::Hit(0));
            // Absent key: first vacancy past the wrap.
            assert_eq!(probe_on(backend, &keys, 29, 99), ProbeResult::Vacant(1));
        }
    }

    #[test]
    fn term_sum_matches_scalar_small() {
        let groups: Vec<(u64, u64)> = vec![(1, 100), (2, 3), (7, 1), (1024, 2), (5000, 1)];
        let reference = scalar_term_sum(groups.iter().copied());
        for backend in probe_backends() {
            let got = term_sum_on(backend, groups.iter().copied());
            let rel = (got - reference).abs() / reference.abs().max(1.0);
            assert!(rel <= 1e-13, "backend {backend:?}: {got} vs {reference}");
        }
    }
}
