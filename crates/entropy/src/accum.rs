//! Per-(OD flow, time bin) accumulation of traffic views.
//!
//! The paper constructs, for every OD flow and 5-minute bin, six numbers:
//! byte count, packet count, and the sample entropy of the four traffic
//! features. [`BinAccumulator`] holds the working distribution stores for
//! one cell of that grid and collapses them into a [`BinSummary`]; the
//! stores can then be dropped, which is what keeps three weeks of
//! network-wide data in memory (the summaries are 48 bytes, the stores
//! are not).
//!
//! The accumulator is generic over the per-feature store
//! ([`DistributionAccumulator`]): the default, [`FeatureHistogram`], is
//! the exact tier, and [`SketchHistogram`](crate::SketchHistogram) is the
//! bounded-memory tier — one type parameter selects the whole cell's
//! memory/accuracy trade.

use crate::dist::DistributionAccumulator;
use crate::hist::FeatureHistogram;
use entromine_net::flow::FlowRecord;
use entromine_net::packet::{Feature, PacketHeader, FEATURES};

/// Working state for one (OD flow, bin) cell: the four per-feature
/// distribution stores plus volume counters.
#[derive(Debug, Clone, Default)]
pub struct BinAccumulator<D: DistributionAccumulator = FeatureHistogram> {
    hists: [D; 4],
    packets: u64,
    bytes: u64,
}

impl BinAccumulator {
    /// An empty exact-tier accumulator.
    ///
    /// Implemented on the concrete default type (the default type
    /// parameter does not apply in expression position), so
    /// `BinAccumulator::new()` keeps inferring the exact tier at every
    /// pre-trait call site. Other tiers construct through
    /// [`from_params`](Self::from_params) /
    /// [`with_size_hints_in`](Self::with_size_hints_in) with the tier
    /// named in the target type.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty exact-tier accumulator whose stores are pre-sized to
    /// absorb the given number of distinct values per feature without
    /// growing. The streaming builders feed this from the previous bin's
    /// observed cardinalities ([`size_hints`](Self::size_hints)): traffic
    /// composition is stable bin over bin, so the hint eliminates nearly
    /// all mid-bin rehashing. A zero hint allocates nothing.
    pub fn with_size_hints(hints: [usize; 4]) -> Self {
        Self::with_size_hints_in(hints, &())
    }
}

impl<D: DistributionAccumulator> BinAccumulator<D> {
    /// An empty accumulator whose stores are built from `params` with no
    /// capacity pre-sizing.
    pub fn from_params(params: &D::Params) -> Self {
        Self::with_size_hints_in([0; 4], params)
    }

    /// [`with_size_hints`](Self::with_size_hints) with explicit store
    /// parameters — the constructor the tiered grid builders use.
    pub fn with_size_hints_in(hints: [usize; 4], params: &D::Params) -> Self {
        BinAccumulator {
            hists: std::array::from_fn(|i| D::with_params(params, hints[i])),
            packets: 0,
            bytes: 0,
        }
    }

    /// The number of distinct values currently held per feature — the
    /// sizing feedback for the next bin's
    /// [`with_size_hints`](Self::with_size_hints).
    pub fn size_hints(&self) -> [usize; 4] {
        [
            self.hists[0].size_hint(),
            self.hists[1].size_hint(),
            self.hists[2].size_hint(),
            self.hists[3].size_hint(),
        ]
    }

    /// Adds one packet observation.
    #[inline]
    pub fn add_packet(&mut self, pkt: &PacketHeader) {
        for f in FEATURES {
            self.hists[f.index()].offer(f.extract(pkt));
        }
        self.packets += 1;
        self.bytes += pkt.bytes as u64;
    }

    /// Adds every packet in a slice.
    pub fn add_packets(&mut self, packets: &[PacketHeader]) {
        for p in packets {
            self.add_packet(p);
        }
    }

    /// Adds an aggregated flow record: feature values are weighted by the
    /// record's packet count, exactly as if its packets had been offered
    /// individually (the paper computes entropy from packet counts).
    pub fn add_flow(&mut self, rec: &FlowRecord) {
        let n = rec.packets;
        self.hists[Feature::SrcIp.index()].offer_n(rec.key.src_ip.0, n);
        self.hists[Feature::SrcPort.index()].offer_n(rec.key.src_port as u32, n);
        self.hists[Feature::DstIp.index()].offer_n(rec.key.dst_ip.0, n);
        self.hists[Feature::DstPort.index()].offer_n(rec.key.dst_port as u32, n);
        self.packets += n;
        self.bytes += rec.bytes;
    }

    /// Absorbs one combined run of traffic sharing a single feature
    /// tuple — the batch ingest engine's per-run hot path. `values` holds
    /// the four extracted feature values in [`FEATURES`] order; `packets`
    /// weights every store update, exactly as if the run's packets had
    /// been offered individually (counts are exact integer sums and every
    /// derived metric is a function of the count multiset alone).
    #[inline]
    pub fn absorb_run(&mut self, values: [u32; 4], packets: u64, bytes: u64) {
        self.hists[0].offer_n(values[0], packets);
        self.hists[1].offer_n(values[1], packets);
        self.hists[2].offer_n(values[2], packets);
        self.hists[3].offer_n(values[3], packets);
        self.packets += packets;
        self.bytes += bytes;
    }

    /// Merges another accumulator into this one (used when anomaly traffic
    /// is superimposed on baseline traffic in a bin).
    pub fn merge(&mut self, other: &BinAccumulator<D>) {
        for (mine, theirs) in self.hists.iter_mut().zip(&other.hists) {
            mine.merge_from(theirs);
        }
        self.packets += other.packets;
        self.bytes += other.bytes;
    }

    /// Packet count so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Byte count so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Borrow the distribution store of one feature.
    pub fn histogram(&self, feature: Feature) -> &D {
        &self.hists[feature.index()]
    }

    /// Bytes of heap the four stores currently own — what the per-tier
    /// memory ceilings in the bench JSON are measured from.
    pub fn heap_bytes(&self) -> usize {
        self.hists.iter().map(D::heap_bytes).sum()
    }

    /// Builds the hierarchical prefix rollup of one feature's store at
    /// the given prefix widths — see [`crate::rollup`]. For address
    /// features the widths are prefix lengths (`/8`, `/16`, ...); the
    /// sketched tier answers with Horvitz–Thompson-scaled masses.
    pub fn prefix_rollup(&self, feature: Feature, widths: &[u8]) -> crate::rollup::PrefixRollup {
        crate::rollup::PrefixRollup::from_accumulator(&self.hists[feature.index()], widths)
    }

    /// Collapses the stores into the six per-bin numbers.
    pub fn summarize(&self) -> BinSummary {
        let mut entropy = [0.0; 4];
        for f in FEATURES {
            entropy[f.index()] = self.hists[f.index()].entropy();
        }
        BinSummary {
            packets: self.packets,
            bytes: self.bytes,
            entropy,
        }
    }
}

/// The six numbers the paper keeps per (OD flow, bin): volume in packets
/// and bytes, and sample entropy of the four features (indexed in
/// [`FEATURES`] order: srcIP, srcPort, dstIP, dstPort).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BinSummary {
    /// Number of (sampled) packets observed in the bin.
    pub packets: u64,
    /// Total bytes across those packets.
    pub bytes: u64,
    /// Sample entropy of each feature, `FEATURES` order.
    pub entropy: [f64; 4],
}

impl BinSummary {
    /// Entropy of one feature.
    pub fn entropy_of(&self, feature: Feature) -> f64 {
        self.entropy[feature.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::{SketchHistogram, SketchParams};
    use entromine_net::flow::aggregate_bin;
    use entromine_net::Ipv4;

    fn pkt(src: u32, sport: u16, dst: u32, dport: u16) -> PacketHeader {
        PacketHeader::tcp(Ipv4(src), sport, Ipv4(dst), dport, 100, 0)
    }

    #[test]
    fn empty_summary_is_zero() {
        let acc = BinAccumulator::new();
        let s = acc.summarize();
        assert_eq!(s.packets, 0);
        assert_eq!(s.bytes, 0);
        assert_eq!(s.entropy, [0.0; 4]);
    }

    #[test]
    fn volumes_accumulate() {
        let mut acc = BinAccumulator::new();
        acc.add_packet(&pkt(1, 10, 2, 80));
        acc.add_packet(&pkt(1, 10, 2, 80));
        let s = acc.summarize();
        assert_eq!(s.packets, 2);
        assert_eq!(s.bytes, 200);
    }

    #[test]
    fn entropy_reflects_feature_structure() {
        let mut acc = BinAccumulator::new();
        // Two sources, one destination: srcIP entropy 1 bit, dstIP 0 bits.
        acc.add_packet(&pkt(1, 10, 9, 80));
        acc.add_packet(&pkt(2, 10, 9, 80));
        let s = acc.summarize();
        assert!((s.entropy_of(Feature::SrcIp) - 1.0).abs() < 1e-12);
        assert_eq!(s.entropy_of(Feature::DstIp), 0.0);
        assert_eq!(s.entropy_of(Feature::SrcPort), 0.0);
        assert_eq!(s.entropy_of(Feature::DstPort), 0.0);
    }

    #[test]
    fn flow_records_weight_by_packet_count() {
        // Offering packets individually or as an aggregated record must
        // produce identical summaries.
        let packets = vec![
            pkt(1, 10, 2, 80),
            pkt(1, 10, 2, 80),
            pkt(1, 10, 2, 80),
            pkt(3, 33, 2, 80),
        ];
        let mut by_packet = BinAccumulator::new();
        by_packet.add_packets(&packets);

        let mut by_flow = BinAccumulator::new();
        for rec in aggregate_bin(&packets) {
            by_flow.add_flow(&rec);
        }

        let a = by_packet.summarize();
        let b = by_flow.summarize();
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.bytes, b.bytes);
        for f in FEATURES {
            assert!((a.entropy_of(f) - b.entropy_of(f)).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_equals_joint_accumulation() {
        let first = vec![pkt(1, 10, 2, 80), pkt(2, 20, 2, 80)];
        let second = vec![pkt(3, 30, 4, 443)];

        let mut joint = BinAccumulator::new();
        joint.add_packets(&first);
        joint.add_packets(&second);

        let mut a = BinAccumulator::new();
        a.add_packets(&first);
        let mut b = BinAccumulator::new();
        b.add_packets(&second);
        a.merge(&b);

        let sj = joint.summarize();
        let sm = a.summarize();
        assert_eq!(sj.packets, sm.packets);
        assert_eq!(sj.bytes, sm.bytes);
        for f in FEATURES {
            assert!((sj.entropy_of(f) - sm.entropy_of(f)).abs() < 1e-12);
        }
    }

    #[test]
    fn absorb_run_equals_per_packet_offers() {
        let packets = vec![
            pkt(1, 10, 2, 80),
            pkt(1, 10, 2, 80),
            pkt(3, 33, 2, 80),
            pkt(1, 10, 2, 80),
            pkt(3, 33, 4, 443),
        ];
        let mut by_packet = BinAccumulator::new();
        by_packet.add_packets(&packets);

        // The same traffic as combined runs, in a different order, into a
        // hint-pre-sized accumulator: every observable must match.
        let mut combined = BinAccumulator::with_size_hints([8, 8, 8, 8]);
        combined.absorb_run([3, 33, 4, 443], 1, 100);
        combined.absorb_run([1, 10, 2, 80], 3, 300);
        combined.absorb_run([3, 33, 2, 80], 1, 100);

        assert_eq!(by_packet.summarize(), combined.summarize());
        for f in FEATURES {
            assert_eq!(by_packet.histogram(f), combined.histogram(f));
        }
        assert_eq!(combined.size_hints(), [2, 2, 2, 2]);
    }

    #[test]
    fn histogram_access() {
        let mut acc = BinAccumulator::new();
        acc.add_packet(&pkt(1, 10, 2, 80));
        acc.add_packet(&pkt(1, 10, 2, 443));
        let dports = acc.histogram(Feature::DstPort);
        assert_eq!(dports.distinct(), 2);
        assert_eq!(dports.count(80), 1);
    }

    #[test]
    fn sketched_cell_mirrors_exact_cell_under_budget() {
        // A sketched accumulator that never exceeds its budget is the
        // exact accumulator, entropy bit for bit.
        let params = SketchParams { budget: 64 };
        let mut sketched: BinAccumulator<SketchHistogram> =
            BinAccumulator::with_size_hints_in([4; 4], &params);
        let mut exact = BinAccumulator::new();
        for i in 0..30u32 {
            let p = pkt(i % 5, (i % 3) as u16, 9, 80);
            sketched.add_packet(&p);
            exact.add_packet(&p);
        }
        assert_eq!(sketched.summarize(), exact.summarize());
        assert_eq!(sketched.histogram(Feature::SrcIp).level(), 0);
    }

    #[test]
    fn sketched_cell_heap_stays_under_ceiling() {
        let params = SketchParams { budget: 32 };
        let mut acc: BinAccumulator<SketchHistogram> = BinAccumulator::from_params(&params);
        for i in 0..20_000u32 {
            acc.add_packet(&pkt(i, (i % 40_000) as u16, i / 3, (i % 100) as u16));
        }
        assert!(acc.heap_bytes() <= 4 * SketchHistogram::heap_ceiling(32));
        assert_eq!(acc.packets(), 20_000);
    }
}
