//! Equivalence pins for the entropy crate's SIMD kernel tier.
//!
//! * The **probe kernel is semantics-exact**: driven over random insert
//!   sequences through the explicit `probe_on` seam, every backend must
//!   produce a bitwise-identical key column — same slot for every
//!   insert, so capacity history and layout can never depend on the
//!   host. CI re-runs this suite under `ENTROMINE_FORCE_SCALAR=1` to pin
//!   the auto-dispatch seam itself.
//! * The **`Σ n·log2 n` reduction is tolerance-pinned**: the multi-lane
//!   compensated kernel must agree with the sequential scalar reference
//!   to 1e-13 relative, including across the `n·log2 n` lookup-table
//!   cutoff at 1024.
//! * The **flat histogram's public observables** are pinned across its
//!   growth boundary (the load-factor-triggered rehash runs through the
//!   same probe kernel).

use entromine_entropy::kernel::{probe_backends, probe_on, term_sum_on, Backend, ProbeResult};
use entromine_entropy::{entropy_from_sorted_counts, sample_entropy, FeatureHistogram};
use proptest::prelude::*;

/// The table's hash for one `u32` key — the same single multiply by the
/// pinned FxHash constant the production table uses (the constant is part
/// of the crate's reproducibility contract: same seed ⇒ same dataset).
fn fx(key: u32) -> u64 {
    (key as u64).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// Builds a key column by inserting `values` through the probe seam on
/// one explicit backend, mirroring the production insert (capacity stays
/// a power of two, load factor capped at one half so a vacancy is always
/// reachable).
fn build_table(backend: Backend, values: &[u32], cap: usize) -> Vec<u32> {
    assert!(cap.is_power_of_two());
    let mut keys = vec![0u32; cap];
    let mut occupied = 0;
    for &v in values {
        let stored = match v.checked_add(1) {
            Some(s) => s,
            None => continue, // u32::MAX lives in a side counter, not the table
        };
        if 2 * (occupied + 1) > cap {
            break;
        }
        match probe_on(backend, &keys, fx(v) as usize, stored) {
            ProbeResult::Hit(_) => {}
            ProbeResult::Vacant(j) => {
                keys[j] = stored;
                occupied += 1;
            }
        }
    }
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn probe_layout_bitwise_identical_across_backends(
        // A narrow value range forces collision clusters; a wide one
        // exercises sparse tables. Mix both.
        narrow in proptest::collection::vec(0u32..64, 0..24),
        wide in proptest::collection::vec(any::<u32>(), 0..24),
    ) {
        let values: Vec<u32> = narrow.into_iter().chain(wide).collect();
        for cap in [32usize, 128] {
            let reference = build_table(Backend::Scalar, &values, cap);
            for backend in probe_backends() {
                let got = build_table(backend, &values, cap);
                prop_assert_eq!(
                    &got, &reference,
                    "key column differs on {:?} (cap {})", backend, cap
                );
            }
        }
    }

    #[test]
    fn probe_lookup_agrees_across_backends(
        present in proptest::collection::vec(0u32..256, 1..32),
        absent in proptest::collection::vec(256u32..512, 1..8),
    ) {
        let keys = build_table(Backend::Scalar, &present, 128);
        for backend in probe_backends() {
            for v in present.iter().chain(&absent) {
                prop_assert_eq!(
                    probe_on(backend, &keys, fx(*v) as usize, v + 1),
                    probe_on(Backend::Scalar, &keys, fx(*v) as usize, v + 1),
                    "lookup of {} differs on {:?}", v, backend
                );
            }
        }
    }

    #[test]
    fn term_sum_backends_agree(
        groups in proptest::collection::vec((1u64..200_000, 1u64..2_000), 0..300),
    ) {
        let reference = term_sum_on(Backend::Scalar, groups.iter().copied());
        for backend in probe_backends() {
            let got = term_sum_on(backend, groups.iter().copied());
            let rel = (got - reference).abs() / reference.abs().max(1.0);
            prop_assert!(
                rel <= 1e-13,
                "term_sum on {:?}: {} vs scalar {} (rel {})", backend, got, reference, rel
            );
        }
    }

    #[test]
    fn histogram_counts_survive_growth_under_dispatch(
        values in proptest::collection::vec((0u32..500, 1u64..50), 1..200),
    ) {
        // Runs on whatever backend the process latched (CI covers both
        // auto and forced-scalar): the flat table must agree with a
        // plain reference map through however many rehashes occur.
        let mut h = FeatureHistogram::new();
        let mut reference = std::collections::BTreeMap::new();
        for &(v, n) in &values {
            h.add_n(v, n);
            *reference.entry(v).or_insert(0u64) += n;
        }
        prop_assert_eq!(h.distinct(), reference.len());
        for (&v, &n) in &reference {
            prop_assert_eq!(h.count(v), n, "count of {}", v);
        }
    }
}

/// The load-factor growth boundary: MIN_CAP is 32 and tables grow at
/// half full, so distinct counts 15 → 16 → 17 straddle the first rehash.
/// Counts, distinct, and lookups must be unperturbed on every side, and
/// a pre-sized table (different capacity history) must compare equal.
#[test]
fn growth_boundary_preserves_observables() {
    for boundary in [15u32, 16, 17, 63, 64, 65] {
        let mut grown = FeatureHistogram::new();
        for v in 0..boundary {
            grown.add_n(v, u64::from(v) + 1);
        }
        let mut presized = FeatureHistogram::with_capacity(boundary as usize);
        for v in (0..boundary).rev() {
            presized.add_n(v, u64::from(v) + 1);
        }
        assert_eq!(
            grown.distinct(),
            boundary as usize,
            "distinct at {boundary}"
        );
        for v in 0..boundary {
            assert_eq!(grown.count(v), u64::from(v) + 1, "count {v} at {boundary}");
        }
        assert_eq!(grown.count(boundary + 1), 0);
        assert_eq!(
            grown, presized,
            "multiset equality across capacity histories at {boundary}"
        );
        assert_eq!(
            sample_entropy(&grown),
            sample_entropy(&presized),
            "entropy across capacity histories at {boundary}"
        );
    }
}

/// Counts straddling the `n·log2 n` lookup-table cutoff (1024): the
/// dispatched entropy must match the canonical sorted-counts reduction
/// bit-for-bit (same process, same backend) and the direct formula to
/// high accuracy.
#[test]
fn entropy_term_table_cutoff_edge() {
    let counts = [1022u64, 1023, 1024, 1025];
    let mut h = FeatureHistogram::new();
    for (i, &n) in counts.iter().enumerate() {
        h.add_n(i as u32, n);
    }
    let total: u64 = counts.iter().sum();
    assert_eq!(
        sample_entropy(&h),
        entropy_from_sorted_counts(total, &counts),
        "histogram path must equal the canonical sorted-counts path"
    );
    let s = total as f64;
    let direct: f64 = -counts
        .iter()
        .map(|&n| (n as f64 / s) * (n as f64 / s).log2())
        .sum::<f64>();
    assert!(
        (sample_entropy(&h) - direct).abs() <= 1e-12,
        "entropy near table cutoff: {} vs direct {}",
        sample_entropy(&h),
        direct
    );
    // The reduction itself, pinned across backends right at the edge.
    let groups: Vec<(u64, u64)> = counts.iter().map(|&c| (c, 1)).collect();
    let reference = term_sum_on(Backend::Scalar, groups.iter().copied());
    for backend in probe_backends() {
        let got = term_sum_on(backend, groups.iter().copied());
        let rel = (got - reference).abs() / reference.abs().max(1.0);
        assert!(
            rel <= 1e-13,
            "cutoff terms on {backend:?}: {got} vs {reference}"
        );
    }
}
