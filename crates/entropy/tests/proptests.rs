//! Property-based tests for histograms and entropy metrics.

use entromine_entropy::{
    gini_coefficient, normalized_entropy, sample_entropy, simpson_index, BinAccumulator,
    FeatureHistogram,
};
use entromine_net::{Ipv4, PacketHeader};
use proptest::prelude::*;

fn hist_from(values: &[u32]) -> FeatureHistogram {
    values.iter().copied().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn entropy_bounds(values in proptest::collection::vec(0u32..1000, 0..300)) {
        let h = hist_from(&values);
        let e = sample_entropy(&h);
        prop_assert!(e >= 0.0, "entropy must be nonnegative, got {}", e);
        let n = h.distinct().max(1) as f64;
        prop_assert!(e <= n.log2() + 1e-9, "entropy {} exceeds log2(N) = {}", e, n.log2());
    }

    #[test]
    fn entropy_invariant_under_relabeling(values in proptest::collection::vec(0u32..100, 1..200), offset in 1u32..1_000_000) {
        // Entropy depends only on the multiset of counts, not the labels.
        let h1 = hist_from(&values);
        let relabeled: Vec<u32> = values.iter().map(|v| v.wrapping_add(offset)).collect();
        let h2 = hist_from(&relabeled);
        prop_assert!((sample_entropy(&h1) - sample_entropy(&h2)).abs() < 1e-12);
    }

    #[test]
    fn entropy_invariant_under_count_scaling(values in proptest::collection::vec(0u32..50, 1..100), k in 1u64..20) {
        // Multiplying every count by k leaves the distribution unchanged.
        let h1 = hist_from(&values);
        let mut h2 = FeatureHistogram::new();
        for (v, n) in h1.iter() {
            h2.add_n(v, n * k);
        }
        prop_assert!((sample_entropy(&h1) - sample_entropy(&h2)).abs() < 1e-9);
    }

    #[test]
    fn normalized_entropy_in_unit_interval(values in proptest::collection::vec(0u32..500, 0..300)) {
        let h = hist_from(&values);
        let ne = normalized_entropy(&h);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ne));
    }

    #[test]
    fn simpson_in_unit_interval(values in proptest::collection::vec(0u32..500, 0..300)) {
        let s = simpson_index(&hist_from(&values));
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn gini_in_unit_interval(values in proptest::collection::vec(0u32..500, 0..300)) {
        let g = gini_coefficient(&hist_from(&values));
        prop_assert!((-1e-12..=1.0).contains(&g), "gini out of range: {}", g);
    }

    #[test]
    fn merge_totals_add(a in proptest::collection::vec(0u32..100, 0..100), b in proptest::collection::vec(0u32..100, 0..100)) {
        let ha = hist_from(&a);
        let hb = hist_from(&b);
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.total(), ha.total() + hb.total());
        prop_assert!(merged.distinct() <= ha.distinct() + hb.distinct());
        prop_assert!(merged.distinct() >= ha.distinct().max(hb.distinct()));
    }

    #[test]
    fn rank_order_sums_to_total(values in proptest::collection::vec(0u32..200, 0..200)) {
        let h = hist_from(&values);
        let ranked = h.rank_ordered_counts();
        prop_assert_eq!(ranked.iter().sum::<u64>(), h.total());
        // Must be non-increasing.
        for w in ranked.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn accumulator_entropy_matches_direct_histograms(
        srcs in proptest::collection::vec(0u32..20, 1..100),
        dport in 0u16..1024,
    ) {
        let packets: Vec<PacketHeader> = srcs
            .iter()
            .map(|&s| PacketHeader::tcp(Ipv4(s), 1234, Ipv4(42), dport, 100, 0))
            .collect();
        let mut acc = BinAccumulator::new();
        acc.add_packets(&packets);
        let summary = acc.summarize();

        let h = hist_from(&srcs);
        prop_assert!((summary.entropy[0] - sample_entropy(&h)).abs() < 1e-12);
        // Single destination port: zero entropy.
        prop_assert_eq!(summary.entropy[3], 0.0);
        prop_assert_eq!(summary.packets, packets.len() as u64);
    }
}
