//! Sharded vs. serial ingest equivalence — the contract of the ingest
//! plane.
//!
//! The sharded plane is only admissible if sharding is *invisible* in the
//! output: for any shard count, any batch segmentation, and any watermark
//! schedule, the emitted `FinalizedBin` sequence must be **bit-identical**
//! to the serial `StreamingGridBuilder`'s on the same events — same bins,
//! same per-flow volumes, same entropies to the last bit, same late-event
//! accounting. The serial builder is the executable specification; the
//! sharded builder is the production plane pinned against it here.
//!
//! The fixed tests cover late events, gap bins, lateness slack, flow
//! records, and the end-of-stream flush; the proptest sweeps random
//! traffic shapes across shard counts 1/2/7/16.
//!
//! The `combining_*` tests pin the map-side combining batch path
//! specifically (these are what CI's `combining-equivalence` step runs):
//! batches — including shuffled ones, flow-record ones, and batches
//! straddling bins — must finalize bit-identically to per-packet offers
//! on the serial builder and on every shard count, late events and gap
//! bins included.

use entromine_entropy::shard::ShardedGridBuilder;
use entromine_entropy::stream::{StreamConfig, StreamingGridBuilder};
use entromine_net::flow::aggregate_bin;
use entromine_net::{Ipv4, PacketHeader};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 16];

/// A deterministic pseudo-traffic stream: `(flow, packet)` events in
/// near-time order with controllable stragglers and silent bins.
fn traffic(
    seed: u64,
    n_flows: usize,
    n_bins: usize,
    per_bin: usize,
    gap_bins: &[usize],
    stragglers: usize,
) -> Vec<(usize, PacketHeader)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for bin in 0..n_bins {
        if gap_bins.contains(&bin) {
            continue;
        }
        for _ in 0..per_bin {
            let flow = rng.random_range(0..n_flows);
            let ts = bin as u64 * 300 + rng.random_range(0..300);
            let pkt = PacketHeader::tcp(
                Ipv4(rng.random_range(0..50)),
                rng.random_range(1024..1064),
                Ipv4(rng.random_range(0..20)),
                [80u16, 443, 53, 22][rng.random_range(0..4)],
                40 + rng.random_range(0..1400),
                ts,
            );
            out.push((flow, pkt));
        }
    }
    // Stragglers: events for long-sealed bins, interleaved at the end of
    // the stream (they are offered after the watermark has moved on).
    for _ in 0..stragglers {
        let flow = rng.random_range(0..n_flows);
        let pkt = PacketHeader::tcp(Ipv4(1), 1024, Ipv4(2), 80, 40, rng.random_range(0..300));
        out.push((flow, pkt));
    }
    out
}

/// Drives the serial builder event by event with watermark advances at
/// each bin boundary, returning (sealed bins..., late count).
fn run_serial(
    config: &StreamConfig,
    events: &[(usize, PacketHeader)],
    watermarks: &[u64],
) -> (Vec<entromine_entropy::FinalizedBin>, u64) {
    let mut b = StreamingGridBuilder::new(config.clone()).expect("serial builder");
    let mut out = Vec::new();
    let mut remaining = events;
    for (i, &wm) in watermarks.iter().enumerate() {
        // Offer an even slice of the stream before each watermark step.
        let take = if i + 1 == watermarks.len() {
            remaining.len()
        } else {
            events.len() / watermarks.len()
        }
        .min(remaining.len());
        let (now, rest) = remaining.split_at(take);
        remaining = rest;
        for (flow, pkt) in now {
            b.offer_packet(*flow, pkt).expect("offer");
        }
        out.extend(b.advance_watermark(wm));
    }
    let late = b.late_events();
    out.extend(b.finish());
    (out, late)
}

/// Drives the sharded builder with the same slicing, offering each slice
/// as one batch.
fn run_sharded(
    config: &StreamConfig,
    shards: usize,
    events: &[(usize, PacketHeader)],
    watermarks: &[u64],
) -> (Vec<entromine_entropy::FinalizedBin>, u64) {
    let mut b = ShardedGridBuilder::new(config.clone(), shards).expect("sharded builder");
    let mut out = Vec::new();
    let mut remaining = events;
    for (i, &wm) in watermarks.iter().enumerate() {
        let take = if i + 1 == watermarks.len() {
            remaining.len()
        } else {
            events.len() / watermarks.len()
        }
        .min(remaining.len());
        let (now, rest) = remaining.split_at(take);
        remaining = rest;
        b.offer_packets(now).expect("offer batch");
        out.extend(b.advance_watermark(wm));
    }
    let late = b.late_events();
    out.extend(b.finish());
    (out, late)
}

/// Bitwise comparison of two finalized sequences (`FinalizedBin` derives
/// `PartialEq`, and f64 equality here *is* the bit test we want).
fn assert_bit_identical(
    serial: &[entromine_entropy::FinalizedBin],
    sharded: &[entromine_entropy::FinalizedBin],
    label: &str,
) {
    assert_eq!(
        serial.len(),
        sharded.len(),
        "{label}: different number of sealed bins"
    );
    for (a, b) in serial.iter().zip(sharded) {
        assert_eq!(a.bin, b.bin, "{label}: bin order diverged");
        assert_eq!(a, b, "{label}: bin {} diverged", a.bin);
    }
}

#[test]
fn sharded_matches_serial_with_gaps_and_stragglers() {
    let n_flows = 23;
    let config = StreamConfig::new(n_flows);
    let events = traffic(42, n_flows, 12, 400, &[3, 4, 9], 25);
    let watermarks: Vec<u64> = (1..=13).map(|b| b * 300).collect();
    let (serial, serial_late) = run_serial(&config, &events, &watermarks);
    assert!(
        serial
            .iter()
            .any(|fb| fb.summaries.iter().all(|s| s.packets == 0)),
        "fixture must exercise gap bins"
    );
    assert!(serial_late > 0, "fixture must exercise late events");
    for shards in SHARD_COUNTS {
        let (sharded, late) = run_sharded(&config, shards, &events, &watermarks);
        assert_bit_identical(&serial, &sharded, &format!("{shards} shards"));
        assert_eq!(late, serial_late, "{shards} shards: late-event accounting");
    }
}

#[test]
fn sharded_matches_serial_under_lateness_slack() {
    let n_flows = 9;
    let config = StreamConfig::new(n_flows).with_lateness(120);
    let events = traffic(7, n_flows, 8, 200, &[], 10);
    let watermarks: Vec<u64> = (1..=9).map(|b| b * 300 + 60).collect();
    let (serial, serial_late) = run_serial(&config, &events, &watermarks);
    for shards in SHARD_COUNTS {
        let (sharded, late) = run_sharded(&config, shards, &events, &watermarks);
        assert_bit_identical(&serial, &sharded, &format!("{shards} shards (slack)"));
        assert_eq!(late, serial_late);
    }
}

#[test]
fn flow_record_batches_match_serial_packet_feed() {
    // The same traffic offered as packets (serial) and as aggregated
    // flow-record batches (sharded) must agree exactly: record
    // aggregation preserves per-cell counts, and counts are all the
    // summaries see.
    let n_flows = 11;
    let config = StreamConfig::new(n_flows);
    let events = traffic(99, n_flows, 6, 300, &[2], 0);

    let mut serial = StreamingGridBuilder::new(config.clone()).unwrap();
    for (flow, pkt) in &events {
        serial.offer_packet(*flow, pkt).unwrap();
    }
    let serial_bins = serial.finish();

    for shards in SHARD_COUNTS {
        let mut sharded = ShardedGridBuilder::new(config.clone(), shards).unwrap();
        // Aggregate per (bin, flow) so record binning matches packet
        // binning, then offer everything as one record batch.
        let mut batch = Vec::new();
        for bin in 0..6usize {
            for flow in 0..n_flows {
                let cell: Vec<PacketHeader> = events
                    .iter()
                    .filter(|(f, p)| *f == flow && (p.timestamp / 300) as usize == bin)
                    .map(|(_, p)| *p)
                    .collect();
                for rec in aggregate_bin(&cell) {
                    batch.push((flow, rec));
                }
            }
        }
        sharded.offer_flows(&batch).unwrap();
        let sharded_bins = sharded.finish();
        assert_eq!(serial_bins.len(), sharded_bins.len());
        for (a, b) in serial_bins.iter().zip(&sharded_bins) {
            assert_eq!(a.bin, b.bin);
            for (sa, sb) in a.summaries.iter().zip(&b.summaries) {
                assert_eq!(sa.packets, sb.packets);
                assert_eq!(sa.bytes, sb.bytes);
                for k in 0..4 {
                    assert!(
                        (sa.entropy[k] - sb.entropy[k]).abs() < 1e-12,
                        "entropy diverged at bin {} feature {k}",
                        a.bin
                    );
                }
            }
        }
    }
}

/// Drives the serial builder through the combining batch path with the
/// same slicing as [`run_serial`], optionally shuffling each batch
/// deterministically first (combining must be order-blind).
fn run_serial_batched(
    config: &StreamConfig,
    events: &[(usize, PacketHeader)],
    watermarks: &[u64],
    shuffle_seed: Option<u64>,
) -> (Vec<entromine_entropy::FinalizedBin>, u64) {
    let mut b = StreamingGridBuilder::new(config.clone()).expect("serial builder");
    let mut out = Vec::new();
    let mut remaining = events;
    for (i, &wm) in watermarks.iter().enumerate() {
        let take = if i + 1 == watermarks.len() {
            remaining.len()
        } else {
            events.len() / watermarks.len()
        }
        .min(remaining.len());
        let (now, rest) = remaining.split_at(take);
        remaining = rest;
        let mut batch: Vec<(usize, PacketHeader)> = now.to_vec();
        if let Some(seed) = shuffle_seed {
            let mut rng = StdRng::seed_from_u64(seed ^ i as u64);
            for i in (1..batch.len()).rev() {
                let j = rng.random_range(0..=i);
                batch.swap(i, j);
            }
        }
        b.offer_packets(&batch).expect("offer batch");
        out.extend(b.advance_watermark(wm));
    }
    let late = b.late_events();
    out.extend(b.finish());
    (out, late)
}

#[test]
fn combining_batch_matches_per_packet_offers() {
    // Serial builder, same events: per-packet offers vs the combining
    // batch path (in offer order and shuffled) with gap bins, stragglers,
    // and mid-stream watermarks.
    let n_flows = 17;
    let config = StreamConfig::new(n_flows);
    let events = traffic(1234, n_flows, 10, 350, &[2, 7], 30);
    let watermarks: Vec<u64> = (1..=11).map(|b| b * 300).collect();
    let (serial, serial_late) = run_serial(&config, &events, &watermarks);
    for (label, shuffle) in [("offer order", None), ("shuffled", Some(99u64))] {
        let (batched, late) = run_serial_batched(&config, &events, &watermarks, shuffle);
        assert_bit_identical(&serial, &batched, &format!("serial combining ({label})"));
        assert_eq!(late, serial_late, "late accounting ({label})");
    }
}

#[test]
fn combining_matches_per_packet_across_shards_with_late_and_gap_bins() {
    // The sharded batch path *is* the combining path; pin it against the
    // per-packet serial spec across every shard count on a fixture that
    // exercises late events and gap bins, with batches spanning several
    // bins (so the sort-and-group really reorders across cells).
    let n_flows = 23;
    let config = StreamConfig::new(n_flows).with_lateness(60);
    let events = traffic(77, n_flows, 9, 300, &[4], 20);
    // Coarse watermarks: every batch covers ~3 bins.
    let watermarks: Vec<u64> = (1..=3).map(|b| b * 1000).collect();
    let (serial, serial_late) = run_serial(&config, &events, &watermarks);
    assert!(serial_late > 0, "fixture must exercise late events");
    for shards in SHARD_COUNTS {
        let (sharded, late) = run_sharded(&config, shards, &events, &watermarks);
        assert_bit_identical(&serial, &sharded, &format!("combining {shards} shards"));
        assert_eq!(late, serial_late);
    }
}

#[test]
fn combining_flow_record_batches_match_packet_offers() {
    // The NetFlow front door: the same traffic offered as aggregated flow
    // records through the combining path — serial and sharded — must
    // match the per-packet serial feed exactly (record aggregation and
    // run combining preserve per-cell counts, and counts are all the
    // summaries see).
    let n_flows = 13;
    let config = StreamConfig::new(n_flows);
    let events = traffic(555, n_flows, 5, 250, &[1], 0);

    let mut serial = StreamingGridBuilder::new(config.clone()).unwrap();
    for (flow, pkt) in &events {
        serial.offer_packet(*flow, pkt).unwrap();
    }
    let serial_bins = serial.finish();

    // One record batch covering the whole stream, aggregated per cell.
    let mut batch = Vec::new();
    for bin in 0..5usize {
        for flow in 0..n_flows {
            let cell: Vec<PacketHeader> = events
                .iter()
                .filter(|(f, p)| *f == flow && (p.timestamp / 300) as usize == bin)
                .map(|(_, p)| *p)
                .collect();
            for rec in aggregate_bin(&cell) {
                batch.push((flow, rec));
            }
        }
    }

    let mut serial_rec = StreamingGridBuilder::new(config.clone()).unwrap();
    serial_rec.offer_flows(&batch).unwrap();
    assert_bit_identical(&serial_bins, &serial_rec.finish(), "serial flow records");

    for shards in SHARD_COUNTS {
        let mut sharded = ShardedGridBuilder::new(config.clone(), shards).unwrap();
        sharded.offer_flows(&batch).unwrap();
        assert_bit_identical(
            &serial_bins,
            &sharded.finish(),
            &format!("{shards}-shard flow records"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn combining_equals_per_packet_on_random_streams(
        seed in 0u64..10_000,
        n_flows in 1usize..40,
        n_bins in 2usize..9,
        per_bin in 1usize..120,
        gap in 0usize..8,
        stragglers in 0usize..12,
        shuffle_seed in 0u64..1000,
    ) {
        let config = StreamConfig::new(n_flows);
        let gaps = [gap % n_bins];
        let events = traffic(seed, n_flows, n_bins, per_bin, &gaps, stragglers);
        let watermarks: Vec<u64> = (1..=(n_bins as u64 + 1)).map(|b| b * 300).collect();
        let (serial, serial_late) = run_serial(&config, &events, &watermarks);
        let (batched, late) =
            run_serial_batched(&config, &events, &watermarks, Some(shuffle_seed));
        assert_bit_identical(&serial, &batched, &format!("serial combining (seed {seed})"));
        prop_assert_eq!(late, serial_late);
    }

    #[test]
    fn sharded_equals_serial_on_random_streams(
        seed in 0u64..10_000,
        n_flows in 1usize..40,
        n_bins in 2usize..9,
        per_bin in 1usize..120,
        gap in 0usize..8,
        stragglers in 0usize..12,
        lateness_ix in 0usize..3,
    ) {
        let lateness = [0u64, 60, 299][lateness_ix];
        let config = StreamConfig::new(n_flows).with_lateness(lateness);
        let gaps = [gap % n_bins];
        let events = traffic(seed, n_flows, n_bins, per_bin, &gaps, stragglers);
        let watermarks: Vec<u64> = (1..=(n_bins as u64 + 1)).map(|b| b * 300).collect();
        let (serial, serial_late) = run_serial(&config, &events, &watermarks);
        for shards in SHARD_COUNTS {
            let (sharded, late) = run_sharded(&config, shards, &events, &watermarks);
            assert_bit_identical(&serial, &sharded, &format!("{shards} shards (seed {seed})"));
            prop_assert_eq!(late, serial_late);
        }
    }
}
