//! Sketched-tier equivalence and error-bound pins — the contract of the
//! bounded-memory scale tier.
//!
//! Three promises are pinned here, on identical synth feeds:
//!
//! 1. **Documented error bound.** For any offered multiset and any
//!    budget, the sketch's entropy estimate lands within
//!    [`SketchHistogram::error_bound_against`] of the exact plane's value
//!    — fixed feeds plus a proptest sweep. Under budget the bound is zero
//!    and the estimate is the exact value bit for bit.
//! 2. **Purity of the sketched plane.** The sketch's state is a pure
//!    function of the offered multiset, so the sketched serial per-event,
//!    serial batched, and sharded (1/2/7/16) planes all emit bit-identical
//!    `FinalizedBin` rows — the same equivalence discipline the exact
//!    tier pins in `shard_equivalence.rs`, now per tier.
//! 3. **Bounded memory where exact is not.** On a feed with ≥ 1e6
//!    distinct keys the exact histogram's heap scales with the key count
//!    while the sketch stays under its precomputed
//!    [`SketchHistogram::heap_ceiling`] at every step, with entropy still
//!    inside the documented bound.
//!
//! CI runs this file as the named `sketch-equivalence` step.

use entromine_entropy::shard::ShardedGridBuilder;
use entromine_entropy::stream::{StreamConfig, StreamingGridBuilder};
use entromine_entropy::{
    AccumulatorPolicy, Feature, FeatureHistogram, FinalizedBin, PrefixRollup, SketchHistogram,
    SketchParams,
};
use entromine_net::{Ipv4, PacketHeader};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 16];

fn sketch_of(params: SketchParams, entries: &[(u32, u64)]) -> SketchHistogram {
    let mut sk = SketchHistogram::new(params);
    for &(v, n) in entries {
        sk.offer_n(v, n);
    }
    sk
}

fn exact_of(entries: &[(u32, u64)]) -> FeatureHistogram {
    let mut h = FeatureHistogram::new();
    for &(v, n) in entries {
        h.add_n(v, n);
    }
    h
}

/// Asserts the documented bound for one multiset and budget, returning
/// the absolute error actually observed.
fn assert_within_bound(entries: &[(u32, u64)], budget: usize) -> f64 {
    let exact = exact_of(entries);
    let sk = sketch_of(SketchParams { budget }, entries);
    let err = (sk.entropy() - entromine_entropy::sample_entropy(&exact)).abs();
    let bound = sk.error_bound_against(&exact);
    assert!(
        err <= bound,
        "budget {budget}: |Ĥ − H| = {err} exceeds documented bound {bound} \
         (level {}, {} retained of {} distinct)",
        sk.level(),
        sk.retained(),
        exact.distinct()
    );
    err
}

// ---------------------------------------------------------------------------
// 1. Error bound, fixed feeds
// ---------------------------------------------------------------------------

#[test]
fn under_budget_sketch_is_bitwise_exact() {
    let entries: Vec<(u32, u64)> = (0..100u32).map(|v| (v * 17, 1 + (v as u64 % 5))).collect();
    let exact = exact_of(&entries);
    let sk = sketch_of(SketchParams { budget: 128 }, &entries);
    assert_eq!(sk.level(), 0);
    assert_eq!(sk.entropy(), entromine_entropy::sample_entropy(&exact));
    assert_eq!(sk.error_bound_against(&exact), 0.0);
}

#[test]
fn dispersed_feed_within_bound() {
    // A scan-shaped feed: hundreds of thousands of near-singleton keys —
    // the regime the sketched tier exists for. All-singleton is estimated
    // exactly; mixing in light repeats exercises the HT estimator.
    for budget in [64usize, 512, 4096] {
        let entries: Vec<(u32, u64)> = (0..300_000u32)
            .map(|v| (v.wrapping_mul(2_654_435_761), 1 + (v as u64 % 2)))
            .collect();
        assert_within_bound(&entries, budget);
    }
}

#[test]
fn skewed_feed_within_bound() {
    // Zipf-ish: a few heavy hitters over a dispersed tail. The bound is
    // loose here (heavy hitters inflate Σf²) but must still hold.
    let mut entries: Vec<(u32, u64)> = (0..50_000u32)
        .map(|v| (v.wrapping_mul(0x9E37_79B9), 1))
        .collect();
    for (rank, e) in entries.iter_mut().take(20).enumerate() {
        e.1 = 200_000 / (rank as u64 + 1);
    }
    for budget in [256usize, 2048] {
        assert_within_bound(&entries, budget);
    }
}

#[test]
fn all_singleton_flood_estimated_exactly() {
    // The pure-scan case: every count is 1, T = T̂ = 0 at every level, so
    // the estimate is exact no matter how deep the sampling goes.
    let entries: Vec<(u32, u64)> = (0..200_000u32)
        .map(|v| (v.wrapping_mul(0x0100_0193), 1))
        .collect();
    let exact = exact_of(&entries);
    let sk = sketch_of(SketchParams { budget: 32 }, &entries);
    assert!(sk.level() > 0);
    assert_eq!(sk.entropy(), entromine_entropy::sample_entropy(&exact));
}

// ---------------------------------------------------------------------------
// 2. Sketched-plane purity: serial / batched / sharded bit-identity
// ---------------------------------------------------------------------------

fn traffic(seed: u64, n_flows: usize, n_bins: usize, per_bin: usize) -> Vec<(usize, PacketHeader)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for bin in 0..n_bins {
        for _ in 0..per_bin {
            let flow = rng.random_range(0..n_flows);
            let ts = bin as u64 * 300 + rng.random_range(0..300);
            let pkt = PacketHeader::tcp(
                // A wide source space so cells overflow small budgets and
                // the sketch really samples.
                Ipv4(rng.random_range(0..1_000_000)),
                rng.random_range(1024..2048),
                Ipv4(rng.random_range(0..100)),
                [80u16, 443, 53, 22][rng.random_range(0..4)],
                40 + rng.random_range(0..1400),
                ts,
            );
            out.push((flow, pkt));
        }
    }
    out
}

fn run_sketched_serial(
    params: SketchParams,
    config: &StreamConfig,
    events: &[(usize, PacketHeader)],
) -> Vec<FinalizedBin> {
    let mut b =
        StreamingGridBuilder::<SketchHistogram>::with_params(config.clone(), params).unwrap();
    for &(flow, ref pkt) in events {
        b.offer_packet(flow, pkt).unwrap();
    }
    b.finish()
}

#[test]
fn sketched_plane_is_order_batch_and_shard_invariant() {
    let config = StreamConfig::new(5);
    let params = SketchParams { budget: 48 };
    let events = traffic(42, 5, 4, 800);
    let reference = run_sketched_serial(params, &config, &events);
    assert!(!reference.is_empty());

    // Shuffled batched serial offers.
    let mut shuffled = events.clone();
    shuffled.reverse();
    let mut batched =
        StreamingGridBuilder::<SketchHistogram>::with_params(config.clone(), params).unwrap();
    for chunk in shuffled.chunks(173) {
        batched.offer_packets(chunk).unwrap();
    }
    assert_eq!(batched.finish(), reference, "batched ≠ per-event");

    // Sharded planes at every shard count, batch path.
    for shards in SHARD_COUNTS {
        let mut sharded =
            ShardedGridBuilder::<SketchHistogram>::with_params(config.clone(), shards, params)
                .unwrap();
        for chunk in events.chunks(311) {
            sharded.offer_packets(chunk).unwrap();
        }
        assert_eq!(sharded.finish(), reference, "shards={shards} ≠ serial");
    }

    // And the run-time facade resolves to the same plane.
    let mut via_policy = AccumulatorPolicy::Sketched { budget: 48 }
        .sharded(config, 7)
        .unwrap();
    via_policy.offer_packets(&events).unwrap();
    assert_eq!(via_policy.finish(), reference);
}

#[test]
fn under_budget_sketched_plane_matches_exact_plane_bitwise() {
    // Key spaces small enough to fit the budget: the sketched plane must
    // be indistinguishable from the exact plane, row for row, bit for bit.
    let config = StreamConfig::new(3);
    let mut rng = StdRng::seed_from_u64(7);
    let events: Vec<(usize, PacketHeader)> = (0..3_000)
        .map(|i| {
            (
                rng.random_range(0..3),
                PacketHeader::tcp(
                    Ipv4(rng.random_range(0..40)),
                    rng.random_range(1024..1040),
                    Ipv4(rng.random_range(0..10)),
                    80,
                    100,
                    (i as u64 * 7) % 1500,
                ),
            )
        })
        .collect();
    let mut exact = StreamingGridBuilder::new(config.clone()).unwrap();
    for &(flow, ref pkt) in &events {
        exact.offer_packet(flow, pkt).unwrap();
    }
    let sketched = run_sketched_serial(SketchParams { budget: 4096 }, &config, &events);
    assert_eq!(exact.finish(), sketched);
}

// ---------------------------------------------------------------------------
// 3. Plane-level error bound: every bin, every flow, every feature
// ---------------------------------------------------------------------------

#[test]
fn sketched_plane_rows_within_bound_of_exact_rows_on_every_bin() {
    let config = StreamConfig::new(4);
    let budget = 64usize;
    let events = traffic(1234, 4, 3, 1500);

    let mut exact = StreamingGridBuilder::new(config.clone()).unwrap();
    for &(flow, ref pkt) in &events {
        exact.offer_packet(flow, pkt).unwrap();
    }
    let exact_bins = exact.finish();
    let sketched_bins = run_sketched_serial(SketchParams { budget }, &config, &events);
    assert_eq!(exact_bins.len(), sketched_bins.len());

    // Rebuild each cell's per-feature multisets to compute the bound the
    // documented way, then hold every emitted entropy to it.
    let mut checked = 0usize;
    for (eb, sb) in exact_bins.iter().zip(&sketched_bins) {
        assert_eq!(eb.bin, sb.bin);
        for flow in 0..4usize {
            for (k, feature) in entromine_entropy::FEATURES.into_iter().enumerate() {
                let entries: Vec<(u32, u64)> = {
                    let mut h = FeatureHistogram::new();
                    for &(f, ref p) in &events {
                        if f == flow && (p.timestamp / 300) as usize == eb.bin {
                            h.add(feature.extract(p));
                        }
                    }
                    h.iter().collect()
                };
                let exact_h = exact_of(&entries);
                let sk = sketch_of(SketchParams { budget }, &entries);
                // The plane's cell is the same pure function of the
                // multiset as direct accumulation.
                assert_eq!(sb.summaries[flow].entropy[k], sk.entropy());
                let err = (sb.summaries[flow].entropy[k] - eb.summaries[flow].entropy[k]).abs();
                let bound = sk.error_bound_against(&exact_h);
                assert!(
                    err <= bound,
                    "bin {} flow {flow} feature {feature:?}: err {err} > bound {bound}",
                    eb.bin
                );
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 4 * 4 * exact_bins.len());
}

// ---------------------------------------------------------------------------
// 4. Bounded memory at the 1e6-distinct scale
// ---------------------------------------------------------------------------

#[test]
fn million_distinct_keys_bounded_under_ceiling_while_exact_is_not() {
    let budget = 4096usize;
    let ceiling = SketchHistogram::heap_ceiling(budget);
    let mut exact = FeatureHistogram::new();
    let mut sk = SketchHistogram::new(SketchParams { budget });
    let mut peak = 0usize;
    // 1,048,576 distinct keys spread over the u32 space, mildly weighted.
    let n = 1u32 << 20;
    for i in 0..n {
        let v = i.wrapping_mul(2_654_435_761);
        let w = 1 + (i as u64 & 7);
        exact.add_n(v, w);
        sk.offer_n(v, w);
        peak = peak.max(sk.heap_bytes());
    }
    assert_eq!(exact.distinct(), n as usize);
    assert!(
        exact.heap_bytes() > 8 * ceiling,
        "exact tier must blow through the sketch ceiling for this pin to mean anything \
         (exact {} vs ceiling {ceiling})",
        exact.heap_bytes()
    );
    assert!(
        peak <= ceiling,
        "sketch peak {peak} exceeded its ceiling {ceiling}"
    );
    let err = (sk.entropy() - entromine_entropy::sample_entropy(&exact)).abs();
    let bound = sk.error_bound_against(&exact);
    assert!(err <= bound, "err {err} > bound {bound} at 1e6 distinct");
}

// ---------------------------------------------------------------------------
// 5. Prefix rollup: consistency laws in both tiers
// ---------------------------------------------------------------------------

#[test]
fn rollup_conserves_mass_in_both_tiers() {
    let entries: Vec<(u32, u64)> = (0..30_000u32)
        .map(|v| (v.wrapping_mul(0x9E37_79B9), 1 + (v as u64 % 4)))
        .collect();
    let exact = exact_of(&entries);
    let sk = sketch_of(SketchParams { budget: 256 }, &entries);
    assert!(sk.level() > 0);

    for rollup in [
        PrefixRollup::from_accumulator(&exact, &[0, 8, 16]),
        PrefixRollup::from_accumulator(&sk, &[0, 8, 16]),
    ] {
        let total = rollup.total_mass();
        assert!(total > 0.0);
        let sum8: f64 = rollup
            .top_prefixes(8, usize::MAX)
            .iter()
            .map(|&(_, m)| m)
            .sum();
        let sum16: f64 = rollup
            .top_prefixes(16, usize::MAX)
            .iter()
            .map(|&(_, m)| m)
            .sum();
        assert_eq!(sum8, total, "/8 masses must sum to the root");
        assert_eq!(sum16, total, "/16 masses must sum to the root");
        // Parent/child conservation for a handful of /8s.
        for p8 in 0..8u32 {
            let children: f64 = (0..256u32).map(|lo| rollup.mass(16, (p8 << 8) | lo)).sum();
            assert_eq!(rollup.mass(8, p8), children, "/8 {p8} vs its /16s");
        }
    }

    // Exact tier's root is the true total; sketched tier's root is the HT
    // estimate of it, and with thousands of survivors it should be close.
    let exact_rollup = PrefixRollup::from_accumulator(&exact, &[0]);
    assert_eq!(exact_rollup.total_mass(), exact.total() as f64);
    let sk_rollup = PrefixRollup::from_accumulator(&sk, &[0]);
    let rel = (sk_rollup.total_mass() - exact.total() as f64).abs() / exact.total() as f64;
    assert!(rel < 0.5, "HT total off by {rel}");
}

#[test]
fn accumulator_rollup_convenience_matches_direct_build() {
    use entromine_entropy::BinAccumulator;
    let mut acc = BinAccumulator::new();
    for i in 0..500u32 {
        acc.add_packet(&PacketHeader::tcp(
            Ipv4(i.wrapping_mul(0x0100_0193)),
            1024,
            Ipv4(9),
            80,
            100,
            0,
        ));
    }
    let via_acc = acc.prefix_rollup(Feature::SrcIp, &[8, 16]);
    let direct = PrefixRollup::from_accumulator(acc.histogram(Feature::SrcIp), &[8, 16]);
    assert_eq!(via_acc, direct);
    assert_eq!(via_acc.total_mass(), 500.0);
}

// ---------------------------------------------------------------------------
// 6. Property sweeps
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_entropy_error_within_documented_bound(
        seed in 0u64..1_000_000,
        budget in 8usize..512,
        distinct in 1usize..20_000,
        max_weight in 1u64..64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries: Vec<(u32, u64)> = (0..distinct)
            .map(|_| (rng.random_range(0..u32::MAX), rng.random_range(1..max_weight + 1)))
            .collect();
        assert_within_bound(&entries, budget);
    }

    #[test]
    fn prop_sketch_state_is_pure_function_of_multiset(
        seed in 0u64..1_000_000,
        budget in 4usize..256,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries: Vec<(u32, u64)> = (0..2_000)
            .map(|_| (rng.random_range(0..100_000), rng.random_range(1..5)))
            .collect();
        let params = SketchParams { budget };
        let forward = sketch_of(params, &entries);
        // Reversed order, split into two merged halves, and unit-weight
        // replay must all land on the identical state.
        let mut reversed: Vec<(u32, u64)> = entries.clone();
        reversed.reverse();
        prop_assert_eq!(&sketch_of(params, &reversed), &forward);
        let (a, b) = entries.split_at(entries.len() / 2);
        let mut merged = sketch_of(params, a);
        merged.merge_from(&sketch_of(params, b));
        prop_assert_eq!(&merged, &forward);
        prop_assert_eq!(merged.entropy(), forward.entropy());
    }

    #[test]
    fn prop_sketched_shard_counts_agree(seed in 0u64..10_000, budget in 8usize..96) {
        let config = StreamConfig::new(4);
        let params = SketchParams { budget };
        let events = traffic(seed, 4, 2, 300);
        let reference = run_sketched_serial(params, &config, &events);
        for shards in [2usize, 7] {
            let mut b = ShardedGridBuilder::<SketchHistogram>::with_params(
                config.clone(), shards, params).unwrap();
            b.offer_packets(&events).unwrap();
            prop_assert_eq!(&b.finish(), &reference, "shards={}", shards);
        }
    }

    #[test]
    fn prop_heap_never_exceeds_ceiling(seed in 0u64..10_000, budget in 1usize..512) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sk = SketchHistogram::new(SketchParams { budget });
        let ceiling = SketchHistogram::heap_ceiling(budget);
        for _ in 0..20_000 {
            sk.offer_n(rng.random_range(0..u32::MAX), rng.random_range(1..4));
            prop_assert!(sk.heap_bytes() <= ceiling);
        }
        prop_assert!(sk.retained() <= budget);
    }
}
