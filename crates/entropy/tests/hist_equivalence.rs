//! Flat-table vs reference-map histogram equivalence, and high-precision
//! pinning of the compensated entropy sum.
//!
//! The flat [`FeatureHistogram`] is only admissible while every
//! observable — totals, per-value counts, distinct counts, top-k, rank
//! order, and entropy — agrees *exactly* with the pinned `HashMap`-backed
//! [`MapHistogram`] reference on the same operation sequence. Entropy
//! additionally must be a pure function of the count multiset: any
//! insertion order, capacity history, or merge split of the same traffic
//! must produce bit-identical values.
//!
//! The second half pins the Neumaier-compensated summation inside
//! [`entropy_from_sorted_counts`] against a double-double (~106-bit)
//! re-computation, including the adversarial shape called out in the
//! issue: one giant count drowning a sea of singletons.

use entromine_entropy::{
    entropy_from_sorted_counts, sample_entropy, FeatureHistogram, MapHistogram,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------
// Observational equivalence: flat table vs reference map
// ---------------------------------------------------------------------

/// One step of a histogram workload, decoded from a generated tuple:
/// selector 0 is `add`, 1 is `add_n` (weights include 0, a no-op, and
/// large jumps), 2 is a merge of a histogram expanded deterministically
/// from the seed. Keys deliberately include 0 and clustered ranges.
type RawOp = (u8, u32, u64);

fn merge_values(seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = rng.random_range(0..40);
    (0..len).map(|_| rng.random_range(0..200)).collect()
}

fn apply(ops: &[RawOp]) -> (FeatureHistogram, MapHistogram) {
    let mut flat = FeatureHistogram::new();
    let mut map = MapHistogram::new();
    for &(sel, v, n) in ops {
        match sel % 3 {
            0 => {
                flat.add(v);
                map.add(v);
            }
            1 => {
                let v = v % 50;
                flat.add_n(v, n);
                map.add_n(v, n);
            }
            _ => {
                let values = merge_values(v as u64 ^ n);
                let mf: FeatureHistogram = values.iter().copied().collect();
                let mut mm = MapHistogram::new();
                for &v in &values {
                    mm.add(v);
                }
                flat.merge(&mf);
                map.merge(&mm);
            }
        }
    }
    (flat, map)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn flat_matches_map_on_random_op_sequences(
        ops in proptest::collection::vec((0u8..3, 0u32..400, 0u64..1000), 0..60),
        probes in proptest::collection::vec(0u32..450, 0..20),
        k in 0usize..30,
    ) {
        let (flat, map) = apply(&ops);
        prop_assert_eq!(flat.total(), map.total());
        prop_assert_eq!(flat.distinct(), map.distinct());
        prop_assert_eq!(flat.is_empty(), map.total() == 0);
        for v in probes {
            prop_assert_eq!(flat.count(v), map.count(v), "count({}) diverged", v);
        }
        // Every entry the map holds, the flat table holds, and vice versa
        // (iter order is unspecified on both sides; compare as sets).
        let mut a: Vec<(u32, u64)> = flat.iter().collect();
        let mut b: Vec<(u32, u64)> = map.iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert_eq!(flat.counts_sorted(), map.counts_sorted());
        prop_assert_eq!(flat.rank_ordered_counts(), map.rank_ordered_counts());
        prop_assert_eq!(flat.top_k(k), map.top_k(k), "top_k({}) diverged", k);
        // Entropy through the shared canonical core must agree bitwise.
        let flat_entropy = sample_entropy(&flat);
        let map_entropy = entropy_from_sorted_counts(map.total(), &map.counts_sorted());
        prop_assert_eq!(flat_entropy.to_bits(), map_entropy.to_bits());
    }

    #[test]
    fn entropy_is_a_pure_function_of_the_multiset(
        values in proptest::collection::vec((0u32..100, 1u64..50), 1..80),
        seed in 0u64..1000,
        cap in 0usize..600,
        split in 0usize..80,
    ) {
        // Build the same multiset four ways: in order, shuffled, into a
        // pre-sized table, and via a merge of two halves. All four must
        // produce bit-identical entropy (and equal histograms).
        let mut in_order = FeatureHistogram::new();
        for &(v, n) in &values {
            in_order.add_n(v, n);
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let mut shuffled_values = values.clone();
        for i in (1..shuffled_values.len()).rev() {
            let j = rng.random_range(0..=i);
            shuffled_values.swap(i, j);
        }
        let mut shuffled = FeatureHistogram::new();
        for &(v, n) in &shuffled_values {
            shuffled.add_n(v, n);
        }

        let mut presized = FeatureHistogram::with_capacity(cap);
        for &(v, n) in &shuffled_values {
            presized.add_n(v, n);
        }

        let split = split.min(values.len());
        let mut merged = FeatureHistogram::new();
        for &(v, n) in &values[..split] {
            merged.add_n(v, n);
        }
        let mut other = FeatureHistogram::new();
        for &(v, n) in &values[split..] {
            other.add_n(v, n);
        }
        merged.merge(&other);

        let reference = sample_entropy(&in_order);
        for (label, h) in [("shuffled", &shuffled), ("presized", &presized), ("merged", &merged)] {
            prop_assert_eq!(&in_order, h, "{} multiset diverged", label);
            prop_assert_eq!(
                reference.to_bits(),
                sample_entropy(h).to_bits(),
                "{} entropy not bit-identical", label
            );
        }
    }
}

// ---------------------------------------------------------------------
// High-precision pinning of the compensated entropy sum
// ---------------------------------------------------------------------

/// A double-double value `hi + lo` with ~106 significand bits.
#[derive(Debug, Clone, Copy)]
struct Dd {
    hi: f64,
    lo: f64,
}

impl Dd {
    const ZERO: Dd = Dd { hi: 0.0, lo: 0.0 };

    /// Error-free transformation: `a + b = s + e` exactly.
    fn two_sum(a: f64, b: f64) -> (f64, f64) {
        let s = a + b;
        let bb = s - a;
        let e = (a - (s - bb)) + (b - bb);
        (s, e)
    }

    fn add(self, x: f64) -> Dd {
        let (s, e) = Dd::two_sum(self.hi, x);
        let lo = self.lo + e;
        let (hi, lo) = Dd::two_sum(s, lo);
        Dd { hi, lo }
    }

    fn value(self) -> f64 {
        self.hi + self.lo
    }
}

/// The entropy formula re-evaluated with a double-double accumulator:
/// every `n·log2 n` term added individually (no grouping), in the given
/// order.
fn entropy_dd(total: u64, counts: &[u64]) -> f64 {
    if total == 0 || counts.len() <= 1 {
        return 0.0;
    }
    let mut t = Dd::ZERO;
    for &c in counts {
        if c > 1 {
            let x = c as f64;
            t = t.add(x * x.log2());
        }
    }
    let s = total as f64;
    (s.log2() - t.value() / s).max(0.0)
}

/// |a - b| in units of `b`'s ulp (for finite, same-sign values).
fn ulps_apart(a: f64, b: f64) -> u64 {
    (a.to_bits() as i64 - b.to_bits() as i64).unsigned_abs()
}

#[test]
fn compensated_entropy_matches_double_double_on_giant_plus_singletons() {
    // The issue's adversarial shape: one giant count plus a sea of
    // singletons. The giant's term has magnitude ~2^69 while every
    // singleton contributes exactly zero; a naive accumulation in an
    // unlucky order would shed all the singleton structure. Entropy here
    // is small (the distribution is almost a point mass), so the final
    // subtraction log2(S) − T/S is also a cancellation stress.
    for singletons in [10u64, 1_000, 100_000] {
        for giant in [1u64 << 20, 1u64 << 40, 1_000_000_007_000] {
            let mut counts = vec![1u64; singletons as usize];
            counts.push(giant);
            let total = giant + singletons;
            let h = entropy_from_sorted_counts(total, &counts);
            let r = entropy_dd(total, &counts);
            assert!(
                (h - r).abs() <= 1e-13 * r.abs().max(1.0) || ulps_apart(h, r) <= 8,
                "giant={giant} singletons={singletons}: {h:e} vs dd {r:e}"
            );
            assert!(h > 0.0, "mixture must have positive entropy");
        }
    }
}

#[test]
fn compensated_entropy_matches_double_double_on_wide_magnitude_spread() {
    // Terms spanning ~15 orders of magnitude, many near-duplicates: the
    // grouped Neumaier sum must track the double-double reference to a
    // few ulps even though naive f64 summation would lose the tail.
    let mut rng = StdRng::seed_from_u64(0xE27);
    for round in 0..20 {
        let mut counts: Vec<u64> = Vec::new();
        counts.push(1 + rng.random_range(0..u64::pow(10, 12)));
        for _ in 0..rng.random_range(1..400) {
            let mag = rng.random_range(0..10u32);
            counts.push(1 + rng.random_range(0..u64::pow(10, mag)));
        }
        let singletons = rng.random_range(0..2000);
        counts.resize(counts.len() + singletons, 1);
        counts.sort_unstable();
        let total: u64 = counts.iter().sum();
        let h = entropy_from_sorted_counts(total, &counts);
        let r = entropy_dd(total, &counts);
        assert!(
            (h - r).abs() <= 1e-13 * r.abs().max(1.0) || ulps_apart(h, r) <= 8,
            "round {round}: {h:e} vs dd {r:e} ({} ulps)",
            ulps_apart(h, r)
        );
    }
}

#[test]
fn compensated_entropy_matches_textbook_formula() {
    // Cross-check against the paper's -Σ p log2 p form evaluated in
    // double-double, on assorted well-conditioned histograms.
    let cases: Vec<Vec<u64>> = vec![
        vec![1, 1, 1, 1],
        vec![2, 3, 5, 7, 11, 13],
        vec![1, 10, 100, 1000, 10_000],
        (1..=500u64).collect(),
        vec![1_000_000_000, 1, 1, 1],
    ];
    for counts in cases {
        let total: u64 = counts.iter().sum();
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        let h = entropy_from_sorted_counts(total, &sorted);
        let s = total as f64;
        let mut acc = Dd::ZERO;
        for &c in &counts {
            let p = c as f64 / s;
            acc = acc.add(-p * p.log2());
        }
        let reference = acc.value().max(0.0);
        assert!(
            (h - reference).abs() <= 1e-12 * reference.max(1.0),
            "counts {counts:?}: {h} vs {reference}"
        );
    }
}

// ---------------------------------------------------------------------
// The u32::MAX side-counter path
// ---------------------------------------------------------------------
//
// The flat table encodes vacancy as key 0 and stores values as
// `value + 1`, so `u32::MAX` is the one value the slot encoding cannot
// represent: it lives in a dedicated side counter. Every observable must
// treat it like any other key — these tests drive the side counter
// through insertion, weighted insertion, merges (in both directions and
// on both sides), multiset equality, and entropy, against the map
// reference.

#[test]
fn max_key_insert_and_count_match_reference() {
    let mut flat = FeatureHistogram::new();
    let mut map = MapHistogram::new();
    for h in [&mut flat as &mut dyn FnMutAdd, &mut map] {
        h.add_pair(u32::MAX, 1);
        h.add_pair(u32::MAX, 2);
        h.add_pair(0, 5);
        h.add_pair(7, 3);
    }
    assert_eq!(flat.total(), map.total());
    assert_eq!(flat.distinct(), 3);
    assert_eq!(flat.count(u32::MAX), 3);
    assert_eq!(flat.count(u32::MAX), map.count(u32::MAX));
    let mut a: Vec<(u32, u64)> = flat.iter().collect();
    a.sort_unstable();
    assert_eq!(a, vec![(0, 5), (7, 3), (u32::MAX, 3)]);
    assert_eq!(flat.counts_sorted(), map.counts_sorted());
    // A zero-weight offer of MAX is a no-op and must not create an entry.
    let mut empty = FeatureHistogram::new();
    empty.add_n(u32::MAX, 0);
    assert_eq!(empty.distinct(), 0);
    assert_eq!(empty.count(u32::MAX), 0);
}

/// Object-safe add helper so the flat and map histograms share one
/// driving loop above.
trait FnMutAdd {
    fn add_pair(&mut self, v: u32, n: u64);
}
impl FnMutAdd for FeatureHistogram {
    fn add_pair(&mut self, v: u32, n: u64) {
        self.add_n(v, n);
    }
}
impl FnMutAdd for MapHistogram {
    fn add_pair(&mut self, v: u32, n: u64) {
        self.add_n(v, n);
    }
}

#[test]
fn max_key_merges_in_both_directions() {
    // MAX only on the receiving side, only on the incoming side, and on
    // both — every combination must sum like an ordinary key.
    let with_max: FeatureHistogram = [u32::MAX, u32::MAX, 3].into_iter().collect();
    let without: FeatureHistogram = [3u32, 4].into_iter().collect();

    let mut recv = with_max.clone();
    recv.merge(&without);
    assert_eq!(recv.count(u32::MAX), 2);
    assert_eq!(recv.count(3), 2);

    let mut send = without.clone();
    send.merge(&with_max);
    assert_eq!(send.count(u32::MAX), 2);
    assert_eq!(send, recv, "merge is multiset-commutative incl. MAX");

    let mut both = with_max.clone();
    both.merge(&with_max);
    assert_eq!(both.count(u32::MAX), 4);
    assert_eq!(both.total(), with_max.total() * 2);

    // Against the map reference, bit for bit on entropy.
    let mut map = MapHistogram::new();
    for (v, n) in recv.iter() {
        map.add_n(v, n);
    }
    assert_eq!(
        sample_entropy(&recv).to_bits(),
        entropy_from_sorted_counts(map.total(), &map.counts_sorted()).to_bits()
    );
}

#[test]
fn max_key_participates_in_multiset_equality() {
    let a: FeatureHistogram = [u32::MAX, 1, u32::MAX].into_iter().collect();
    let b: FeatureHistogram = [1u32, u32::MAX, u32::MAX].into_iter().collect();
    assert_eq!(a, b, "order must not matter");
    let c: FeatureHistogram = [1u32, u32::MAX].into_iter().collect();
    assert_ne!(a, c, "differing MAX count must break equality");
    let d: FeatureHistogram = [1u32, 1, u32::MAX].into_iter().collect();
    assert_ne!(
        a, d,
        "swapping MAX mass onto another key must break equality"
    );
}

#[test]
fn max_key_entropy_equals_relabeled_table() {
    // Entropy is label-blind: {MAX: 4, 9: 2, 0: 1} must produce exactly
    // the entropy of {5: 4, 9: 2, 0: 1} even though MAX's count lives in
    // the side counter rather than the columns.
    let mut with_max = FeatureHistogram::new();
    with_max.add_n(u32::MAX, 4);
    with_max.add_n(9, 2);
    with_max.add_n(0, 1);
    let mut relabeled = FeatureHistogram::new();
    relabeled.add_n(5, 4);
    relabeled.add_n(9, 2);
    relabeled.add_n(0, 1);
    assert_eq!(
        sample_entropy(&with_max).to_bits(),
        sample_entropy(&relabeled).to_bits()
    );
    // top_k sees the side counter too, with the deterministic tie order.
    assert_eq!(with_max.top_k(2), vec![(u32::MAX, 4), (9, 2)]);
}
