//! Vendored stand-in for the parts of the [`rand`] crate this workspace
//! uses, implemented from scratch because the build environment has no
//! access to crates.io.
//!
//! API-compatible (for the used surface) with rand 0.9:
//!
//! * [`Rng`] — `random`, `random_range`, `random_bool`, `random_ratio`.
//! * [`SeedableRng`] — `seed_from_u64` / `from_seed`.
//! * [`rngs::StdRng`] and [`rngs::SmallRng`] (behind the `small_rng`
//!   feature, matching the real crate) — both xoshiro256++ seeded through
//!   SplitMix64, which passes BigCrush; statistical quality matters here
//!   because the synthetic traffic generator and the k-means seeding tests
//!   rely on it.
//! * [`seq::index::sample`] — partial Fisher–Yates sampling without
//!   replacement.
//!
//! Generated streams do **not** bit-match the real crate's; everything in
//! this workspace treats seeds as opaque determinism handles, so only
//! stability *within* this implementation matters.
//!
//! [`rand`]: https://crates.io/crates/rand

/// The core of a random number generator: a source of random `u32`/`u64`s.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for the RNGs provided here).
    type Seed;

    /// Creates an RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64`, expanding it with SplitMix64 (the
    /// same convention the real crate documents).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over sub-ranges; the machinery behind
/// [`Rng::random_range`].
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// A range usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Uniform `u64` in `[0, span)` by widening multiply (Lemire's unbiased
/// rejection method's fast path; the bias of the plain fast path is below
/// `span / 2^64`, far beneath anything these simulations can resolve).
pub(crate) fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                if span == 0 || span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64/usize domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let u = <$t as Standard>::sample_standard(rng);
                let v = lo + (hi - lo) * u;
                if !inclusive && v >= hi {
                    // Rounding in the multiply-add can land exactly on `hi`
                    // when its ulp exceeds the gap left by u < 1.
                    return hi.next_down().max(lo);
                }
                v
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// User-facing generation methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.random::<f64>() < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        uniform_u64(self, denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // An all-zero state is a fixed point; SplitMix64 cannot produce
        // four zero outputs in a row, so `s` is always valid here.
        Xoshiro256 { s }
    }

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (w, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        Xoshiro256 { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

macro_rules! define_rng {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name(Xoshiro256);

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                (self.0.next() >> 32) as u32
            }
            fn next_u64(&mut self) -> u64 {
                self.0.next()
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                $name(Xoshiro256::from_seed(seed))
            }
            fn seed_from_u64(state: u64) -> Self {
                $name(Xoshiro256::seed_from_u64(state))
            }
        }
    };
}

/// The seedable generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    define_rng! {
        /// The workspace's default deterministic RNG (xoshiro256++).
        StdRng
    }

    #[cfg(feature = "small_rng")]
    define_rng! {
        /// A small, fast RNG — here the same xoshiro256++ as [`StdRng`],
        /// which already is the "small fast" option.
        SmallRng
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    /// Index sampling without replacement.
    pub mod index {
        use crate::RngCore;

        /// A set of sampled indices (always the "vector of `usize`"
        /// representation; the real crate's u32 compaction is an
        /// optimization we don't need).
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterates over the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Converts into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length`, uniformly at
        /// random, via a partial Fisher–Yates shuffle.
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from {length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = i + crate::uniform_u64(rng, (length - i) as u64) as usize;
                pool.swap(i, j);
                out.push(pool[i]);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::index::sample;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(5i64..=7);
            assert!((5..=7).contains(&w));
        }
    }

    #[test]
    fn range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn sample_without_replacement_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = sample(&mut rng, 50, 20).into_vec();
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "indices must be distinct");
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    fn random_bool_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!(
            (23_000..27_000).contains(&hits),
            "p=0.25 gave {hits}/100000"
        );
    }
}
