//! Vendored stand-in for the parts of the [`criterion`] crate this
//! workspace uses, implemented from scratch because the build environment
//! has no access to crates.io.
//!
//! Behavioral contract:
//!
//! * Under `cargo bench` (cargo passes `--bench` to the harness) every
//!   benchmark is warmed up, run for a fixed measurement window, and a
//!   mean time per iteration plus optional throughput is printed.
//! * Under any other invocation (notably `cargo test`, which executes
//!   `harness = false` bench targets) each benchmark body runs **once**,
//!   as a smoke test, exactly like the real criterion's test mode.
//! * No statistics, plots, or saved baselines.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many logical elements/bytes one iteration processes; turns measured
/// times into rates in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id labelled `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter (used inside groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of the various id-ish arguments `bench_function` accepts.
pub trait IntoBenchmarkId {
    /// The rendered benchmark id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to every benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    bench_mode: bool,
    /// Mean nanoseconds per iteration, filled in by `iter` in bench mode.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, or runs it once in test mode.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.bench_mode {
            black_box(routine());
            self.mean_ns = 0.0;
            self.iters = 1;
            return;
        }
        // Warm-up: also estimates how many iterations fit the window.
        let warmup = Duration::from_millis(200);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warmup.as_nanos() as f64 / warm_iters.max(1) as f64;
        let window = Duration::from_millis(600);
        let iters = ((window.as_nanos() as f64 / per_iter).ceil() as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    bench_mode: bool,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        bench_mode,
        mean_ns: f64::NAN,
        iters: 0,
    };
    f(&mut b);
    if !bench_mode {
        println!("test-mode (1 iter): {id} ... ok");
        return;
    }
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!(" ({:.1} Melem/s)", n as f64 / b.mean_ns * 1e3)
        }
        Throughput::Bytes(n) => {
            format!(
                " ({:.1} MiB/s)",
                n as f64 / b.mean_ns * 1e9 / (1024.0 * 1024.0)
            )
        }
    });
    println!(
        "bench: {id:<50} {:>12}/iter{} [{} iters]",
        format_ns(b.mean_ns),
        rate.unwrap_or_default(),
        b.iters
    );
}

/// The benchmark manager; the `criterion_group!` harness makes one and
/// threads it through every registered function.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` to harness=false targets; cargo test
        // does not, which is how test mode is detected.
        Criterion {
            bench_mode: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.bench_mode, &id.into_id(), None, f);
        self
    }

    /// Runs a standalone benchmark borrowing a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(self.bench_mode, &id.into_id(), None, |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing throughput/sizing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this harness sizes its own runs.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this harness sizes its own runs.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(self.criterion.bench_mode, &full, self.throughput, f);
        self
    }

    /// Runs a benchmark within the group, borrowing a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(self.criterion.bench_mode, &full, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a bench group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { bench_mode: false };
        let mut runs = 0u32;
        c.bench_function("counter", |b| {
            b.iter(|| runs += 1);
        });
        assert_eq!(runs, 1);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { bench_mode: false };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        let data = vec![1, 2, 3, 4];
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<i32>());
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn format_ns_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}
