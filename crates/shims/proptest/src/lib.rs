//! Vendored stand-in for the parts of the [`proptest`] crate this
//! workspace uses, implemented from scratch because the build environment
//! has no access to crates.io.
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), `prop_assert!` / `prop_assert_eq!`
//! / `prop_assert_ne!` / `prop_assume!`, range and tuple strategies,
//! [`any`], [`collection::vec`], and [`Strategy::prop_map`].
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via `Debug`) and
//!   the case number, but is not minimized.
//! * **Deterministic.** Each test derives its RNG seed from its own name,
//!   so failures reproduce exactly; there is no persistence file.
//!
//! [`proptest`]: https://crates.io/crates/proptest

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// Derives a stable per-test RNG from the test's name.
pub fn rng_for_test(name: &str) -> TestRng {
    // FNV-1a; any stable hash works, it only decouples sibling tests.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f(value)` for each generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

impl<T: rand::SampleUniform + PartialOrd + Clone> Strategy for core::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: rand::SampleUniform + PartialOrd + Copy> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_full_range {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random()
            }
        }
    )*};
}
impl_arbitrary_full_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    /// Uniform in `[-1e9, 1e9]` — finite by construction (the real crate
    /// generates NaN/infinities too; nothing here relies on those).
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random_range(-1e9..1e9)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of type `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property-test file normally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a regular test running the body against `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for_test(stringify!($name));
                for case in 0..config.cases {
                    // Snapshot the RNG so failing inputs can be regenerated
                    // for the report; the passing path pays nothing beyond
                    // this cheap state copy.
                    let rng_snapshot = rng.clone();
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(message) = outcome {
                        let mut replay = rng_snapshot;
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut replay);)*
                        let dbg_inputs = format!(
                            concat!($("  ", stringify!($arg), " = {:?}\n",)*),
                            $(&$arg,)*
                        );
                        panic!(
                            "property '{}' failed at case {}/{}:\n{}with inputs:\n{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            message,
                            dbg_inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Like `assert!`, but inside [`proptest!`] bodies: reports the failing
/// inputs along with the condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(
                ::std::format!("prop_assert failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Like `assert_eq!` inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert_eq failed: {} != {}\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!($($fmt)*));
        }
    }};
}

/// Like `assert_ne!` inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert_ne failed: both sides equal {:?}",
                l
            ));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_hit_their_bounds(x in 3usize..10, y in -2.5f64..2.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn prop_map_applies(x in even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn tuples_and_vecs(pair in (any::<u32>(), 0u8..=32), v in crate::collection::vec(0u32..5, 2..7)) {
            let (_, len) = pair;
            prop_assert!(len <= 32);
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 5);
            prop_assert_ne!(x, 5);
        }
    }

    #[test]
    fn exact_size_vec() {
        let mut rng = crate::rng_for_test("exact_size_vec");
        let v = crate::collection::vec(0u32..9, 12).generate(&mut rng);
        assert_eq!(v.len(), 12);
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
