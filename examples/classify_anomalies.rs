//! Unsupervised classification: cluster detected anomalies in entropy space.
//!
//! Injects a labelled population of anomalies, diagnoses the dataset, and
//! clusters the detected anomalies' unit-norm residual entropy 4-vectors
//! with hierarchical agglomerative clustering (the paper's §7) — then
//! prints a Table 7-style summary: cluster sizes, plurality ground-truth
//! labels, and `+ / 0 / -` entropy-space signatures.
//!
//! ```sh
//! cargo run --release --example classify_anomalies -- [--seed N] [--k N]
//! ```

use entromine::cluster::Linkage;
use entromine::net::Topology;
use entromine::synth::{AnomalyLabel, Dataset, DatasetConfig, Schedule, SyntheticNetwork};
use entromine::{
    anomaly_point_matrix, cluster_rows, match_truth, ClassifierConfig, ClusterAlgorithm, Diagnoser,
    MatchOutcome,
};

fn main() {
    let mut seed = 11u64;
    let mut k = 6usize;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let val = it
            .next()
            .unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--seed" => seed = val.parse().expect("u64"),
            "--k" => k = val.parse().expect("count"),
            other => panic!("unknown flag {other}"),
        }
    }

    let config = DatasetConfig {
        seed,
        n_bins: 2 * 288,
        sample_rate: 100,
        traffic_scale: 1.0,
        rate_noise: 0.01,
        anonymize: true,
    };

    println!("scheduling a mixed anomaly population over two days ...");
    let net = SyntheticNetwork::new(Topology::abilene(), config.clone());
    let events = Schedule::uniform(seed ^ 0x77, 6).materialize(&net);
    println!("  {} events injected", events.len());
    let dataset = Dataset::generate(Topology::abilene(), config, events);

    println!("diagnosing ...");
    let fitted = Diagnoser::default().fit(&dataset).expect("fit");
    let report = fitted.diagnose(&dataset).expect("diagnose");
    println!("  {} detections", report.total());

    // Anomaly points & their ground-truth labels.
    let (points, origin) = anomaly_point_matrix(&report);
    if points.rows() < k {
        println!(
            "only {} anomaly points — need at least k = {k}; rerun with more events",
            points.rows()
        );
        return;
    }
    let outcomes = match_truth(&report, &dataset.truth);
    let labels: Vec<Option<AnomalyLabel>> = origin
        .iter()
        .map(|&i| match outcomes[i] {
            MatchOutcome::Truth(t) => Some(dataset.truth[t].event.label),
            MatchOutcome::FalseAlarm => None,
        })
        .collect();

    println!(
        "clustering {} anomaly points into k = {k} clusters (single-linkage HAC) ...",
        points.rows()
    );
    let clustering = ClassifierConfig {
        k,
        algorithm: ClusterAlgorithm::Hierarchical(Linkage::Single),
    }
    .classify(&points)
    .expect("classify");

    println!("\n== Table 7-style cluster summary:");
    println!(
        "{:>8} {:>6} {:>18} {:>10} {:>10}  signature [srcIP srcPort dstIP dstPort]",
        "cluster", "size", "plurality label", "in plur.", "unknowns"
    );
    for row in cluster_rows(&points, &clustering, &labels, 3.0) {
        let (plabel, pcount) = row
            .plurality
            .map(|(l, c)| (l.name().to_string(), c))
            .unwrap_or_else(|| ("-".into(), 0));
        println!(
            "{:>8} {:>6} {:>18} {:>10} {:>10}  {}",
            row.cluster,
            row.size,
            plabel,
            pcount,
            row.unknowns,
            row.signature.sign_string()
        );
    }
    println!(
        "\n(scans should sit in +dstPort/-dstIP space, DDOS in +srcIP/-dstIP,\n\
         alpha flows in the all-concentrated corner — the paper's Table 7 regions)"
    );
}
