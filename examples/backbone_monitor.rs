//! Backbone monitor: train on an archived day, then watch the next day
//! live through the streaming engine.
//!
//! This example drives the full streaming architecture end-to-end:
//!
//! 1. **Train (fit phase)** — generate one archived *week* of
//!    network-wide traffic carrying a Table 3-style anomaly mix and fit
//!    the three subspace models with clean-training refits, exactly as
//!    the batch pipeline always has. (A week, not a day: the rate model
//!    has weekly structure, and a training window that has not seen it
//!    mistakes ordinary day-over-day drift for volume anomalies — the
//!    same reason the paper trains on multi-week archives.)
//! 2. **Stream (score phase)** — regenerate the *next* day as a live
//!    packet feed, push every packet through a `StreamingGridBuilder`
//!    (watermark-driven, accumulators only for open bins), and hand each
//!    finalized bin to a `StreamingDiagnoser` that scores it against the
//!    trained models the moment it seals. Alerts print as they happen.
//!
//! Adverse conditions can be injected from the command line:
//!
//! ```sh
//! cargo run --release --example backbone_monitor -- \
//!     [--seed N] [--alpha 0.999] [--events N] [--missing-chance PCT] \
//!     [--scale 1.0]
//! ```
//!
//! `--missing-chance` randomly drops whole bins of the live feed
//! (collector outages / missing data, which the paper's Geant archive
//! also suffered): the watermark still seals the silent bins, the grid
//! emits them as zero rows, and the monitor keeps running.
//!
//! `--scale` shrinks traffic for quick smoke runs. Note that entropy
//! estimates get noisier as per-cell packet counts shrink, so small
//! scales inflate the false-alarm rate well past the paper's (the same
//! is true of the batch pipeline on the same data — the streaming path
//! reproduces batch behavior exactly, by construction).

use entromine::entropy::{StreamConfig, StreamingGridBuilder};
use entromine::net::Topology;
use entromine::synth::{Dataset, DatasetConfig, InjectedAnomaly, Schedule, SyntheticNetwork};
use entromine::{Diagnoser, DiagnoserConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Bins per monitored day (5-minute bins).
const DAY: usize = 288;
/// Training window: one week of archived bins.
const TRAIN_DAYS: usize = 7;
/// Seconds per bin.
const BIN_SECS: u64 = DatasetConfig::BIN_SECS;

/// How an alert relates to what was actually injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// Covered by a scheduled live anomaly.
    Truth,
    /// The bin was blanked by fault injection (a real outage to detect).
    InjectedOutage,
    /// Neither: a genuine false alarm.
    FalseAlarm,
}

struct Args {
    seed: u64,
    alpha: f64,
    events: usize,
    missing_chance: f64,
    scale: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 1,
        alpha: 0.999,
        events: 24,
        missing_chance: 0.0,
        scale: 1.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--seed" => args.seed = grab().parse().expect("--seed takes a u64"),
            "--alpha" => args.alpha = grab().parse().expect("--alpha takes a float"),
            "--events" => args.events = grab().parse().expect("--events takes a count"),
            "--missing-chance" => {
                args.missing_chance = grab()
                    .parse::<f64>()
                    .expect("--missing-chance takes a percent")
                    / 100.0
            }
            "--scale" => args.scale = grab().parse().expect("--scale takes a float"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let train_bins = TRAIN_DAYS * DAY;
    let config = DatasetConfig {
        seed: args.seed,
        n_bins: train_bins,
        sample_rate: 100,
        // 1.0 is the paper's Abilene intensity; `--scale 0.05` makes a
        // quick smoke run while preserving every ratio.
        traffic_scale: args.scale,
        rate_noise: 0.01,
        anonymize: true,
    };
    let net = SyntheticNetwork::new(Topology::abilene(), config.clone());
    let p = net.indexer().n_flows();

    // ------------------------------------------------------- fit phase --
    println!(
        "== fit phase: one archived week, ~{} anomalies",
        args.events * TRAIN_DAYS
    );
    let train_events =
        Schedule::paper_mix(args.seed ^ 0xABCD, args.events * TRAIN_DAYS).materialize(&net);
    println!(
        "   placed {} training events; generating ...",
        train_events.len()
    );
    let train = Dataset::generate(Topology::abilene(), config.clone(), train_events);
    let started = Instant::now();
    let fitted = Diagnoser::new(DiagnoserConfig {
        alpha: args.alpha,
        ..Default::default()
    })
    .fit(&train)
    .expect("fit");
    println!(
        "   models fitted in {:.1}s (m = {} over {} entropy columns)",
        started.elapsed().as_secs_f64(),
        fitted.entropy_model().inner().normal_dim(),
        4 * p
    );

    // ---------------------------------------------------- score phase --
    // Tomorrow's anomalies: placed within a one-day window, then shifted
    // to the day after the training week (bins train_bins..train_bins+DAY).
    let day_net = SyntheticNetwork::new(
        Topology::abilene(),
        DatasetConfig {
            n_bins: DAY,
            ..config.clone()
        },
    );
    let mut live_events =
        Schedule::paper_mix(args.seed ^ 0x5EED, args.events).materialize(&day_net);
    for ev in &mut live_events {
        ev.start_bin += train_bins;
    }
    let live_truth: Vec<InjectedAnomaly> = live_events
        .into_iter()
        .map(|event| InjectedAnomaly { event })
        .collect();
    println!(
        "\n== score phase: streaming the next day live ({} scheduled events)",
        live_truth.len()
    );

    let mut grid = StreamingGridBuilder::new(StreamConfig::new(p))
        .expect("stream config")
        .starting_at(train_bins);
    let mut monitor = fitted.streaming(args.alpha).expect("streaming scorer");
    let mut outage_rng = StdRng::seed_from_u64(args.seed ^ 0xFA11);
    let mut alerts: Vec<(usize, Outcome)> = Vec::new();
    let mut packets_offered: u64 = 0;
    let mut dropped_bins: Vec<usize> = Vec::new();
    let started = Instant::now();

    for bin in train_bins..train_bins + DAY {
        // Fault injection: a dead collector exports nothing for the bin.
        let blanked = outage_rng.random::<f64>() < args.missing_chance;
        if blanked {
            dropped_bins.push(bin);
        } else {
            for flow in 0..p {
                for pkt in net.cell_packets(bin, flow, &live_truth) {
                    grid.offer_packet(flow, &pkt).expect("offer");
                    packets_offered += 1;
                }
            }
        }
        // The first packet of the next bin advances the event-time
        // watermark past this bin's boundary and seals it.
        for sealed in grid.advance_watermark((bin + 1) as u64 * BIN_SECS) {
            if let Some(diag) = monitor.score_bin(&sealed).expect("score") {
                // Blanked bins are checked first: no packets were streamed
                // for them, so whatever the schedule says, the detector can
                // only have fired on the injected outage's zero row.
                let outcome = if dropped_bins.contains(&diag.bin) {
                    Outcome::InjectedOutage
                } else if live_truth.iter().any(|t| t.bins().contains(&diag.bin)) {
                    Outcome::Truth
                } else {
                    Outcome::FalseAlarm
                };
                let kind = match (diag.methods.volume(), diag.methods.entropy) {
                    (true, true) => "volume+entropy",
                    (true, false) => "volume only",
                    _ => "entropy only",
                };
                let blamed = diag
                    .flows
                    .first()
                    .map(|f| format!("flow {}", f.flow))
                    .unwrap_or_else(|| "no flow blamed".to_string());
                println!(
                    "   [bin {:>4}] ALERT ({kind}): entropy SPE {:.3e}, {blamed}{}",
                    diag.bin,
                    diag.entropy_spe,
                    match outcome {
                        Outcome::Truth => "",
                        Outcome::InjectedOutage => "  ** injected collector outage **",
                        Outcome::FalseAlarm => "  ** no ground truth **",
                    }
                );
                alerts.push((diag.bin, outcome));
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();

    // ------------------------------------------------------- wrap-up ----
    let count = |o: Outcome| alerts.iter().filter(|(_, x)| *x == o).count();
    // All scheduled events count — outages included, they are anomalies
    // the monitor is supposed to flag — so this denominator matches the
    // event set the Truth outcome is judged against.
    let truth_bins: usize = live_truth.iter().map(|t| t.bins().len()).sum();
    println!(
        "\n== streamed {} bins in {elapsed:.1}s:",
        monitor.bins_scored()
    );
    println!(
        "   {:.0} packets/s offered, {:.1} bins/s finalized, {} bins dropped by fault injection",
        packets_offered as f64 / elapsed.max(1e-9),
        monitor.bins_scored() as f64 / elapsed.max(1e-9),
        dropped_bins.len()
    );
    println!(
        "   {} alerts | {} matching ground truth | {} on injected outages | {} false alarms | {} anomalous bins scheduled",
        alerts.len(),
        count(Outcome::Truth),
        count(Outcome::InjectedOutage),
        count(Outcome::FalseAlarm),
        truth_bins
    );
    println!(
        "   grid: {} late events dropped, {} bins finalized, watermark at {}s",
        grid.late_events(),
        grid.finalized_bins(),
        grid.watermark()
    );
}
