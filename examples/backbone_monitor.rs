//! Backbone monitor: a lifecycle-managed deployment on the sharded
//! ingest plane — warm up live, score live, refit as traffic drifts.
//!
//! Where the old incarnation of this example trained offline on an
//! archived week and then scored with a frozen model, this one runs the
//! way a months-long deployment has to:
//!
//! 1. **Ingest** — every packet of every bin is offered in per-bin
//!    batches to a [`ShardedGridBuilder`]: flows hash-partitioned across
//!    `--shards` shards, per-shard open-bin accumulators, a shared
//!    event-time watermark, and `FinalizedBin` rows that are bit-identical
//!    to the serial builder's at any shard count.
//! 2. **Lifecycle** — each finalized bin goes to a [`Monitor`], which
//!    starts in *Warmup* (absorbing its first day), fits, and then keeps
//!    scoring while rolling its sliding training window forward —
//!    refitting on a daily schedule and whenever the recent alarm rate
//!    says the model no longer describes normal traffic (*drift*).
//! 3. **Drift injection** — at noon of the last day the packet source is
//!    swapped for a re-seeded, rescaled network: the traffic mix changes
//!    the way a routing change or re-homed PoP would. The stale model
//!    alarms on everything; the drift trigger fires; the refitted model
//!    (trained on a window that already contains post-drift bins, with
//!    anomalous ones excluded by the trimming rounds) goes quiet again.
//! 4. **Fault injection** — collector outages come from a shared seeded
//!    [`FaultPlan`] applied at the packet seam by a [`FaultInjector`]
//!    (the same harness the chaos tests drive), so the injected ground
//!    truth is a queryable schedule rather than ad-hoc RNG draws.
//!
//! ```sh
//! cargo run --release --example backbone_monitor -- \
//!     [--seed N] [--alpha 0.999] [--events N] [--missing-chance PCT] \
//!     [--scale 0.05] [--shards 8] [--drift-scale 1.4] [--jm]
//! ```
//!
//! `--missing-chance` randomly blanks whole bins (collector outages);
//! the watermark still seals them as zero rows and the monitor flags
//! them. The default threshold policy is `Empirical` — at small traffic
//! scales the Gaussian Jackson–Mudholkar threshold under-covers the
//! heteroskedastic residuals and alarms on ordinary weekly rate
//! structure (pass `--jm` to see exactly that) — which also demonstrates
//! the structured sharpness warning: a two-day warmup cannot resolve the
//! 0.999 quantile, and every refit report says so.

use entromine::entropy::shard::ShardedGridBuilder;
use entromine::entropy::StreamConfig;
use entromine::net::Topology;
use entromine::synth::{DatasetConfig, InjectedAnomaly, Schedule, SyntheticNetwork};
use entromine::{
    DiagnoserConfig, FaultInjector, FaultPlan, Monitor, MonitorConfig, MonitorState, RefitOutcome,
    RefitTrigger, ThresholdPolicy, Verdict,
};
use std::time::Instant;

/// Bins per monitored day (5-minute bins).
const DAY: usize = 288;
/// Seconds per bin.
const BIN_SECS: u64 = DatasetConfig::BIN_SECS;

/// How an alert relates to what was actually injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// Covered by a scheduled live anomaly.
    Truth,
    /// The bin was blanked by fault injection (a real outage to detect).
    InjectedOutage,
    /// After the drift injection: the model is honestly stale and keeps
    /// re-converging while the sliding window rolls into the new regime.
    DriftTransient,
    /// Neither: a genuine false alarm.
    FalseAlarm,
}

struct Args {
    seed: u64,
    alpha: f64,
    events: usize,
    missing_chance: f64,
    scale: f64,
    shards: usize,
    drift_scale: f64,
    jackson_mudholkar: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 1,
        alpha: 0.999,
        events: 24,
        missing_chance: 0.0,
        scale: 0.05,
        shards: 8,
        drift_scale: 1.4,
        jackson_mudholkar: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--seed" => args.seed = grab().parse().expect("--seed takes a u64"),
            "--alpha" => args.alpha = grab().parse().expect("--alpha takes a float"),
            "--events" => args.events = grab().parse().expect("--events takes a count"),
            "--missing-chance" => {
                args.missing_chance = grab()
                    .parse::<f64>()
                    .expect("--missing-chance takes a percent")
                    / 100.0
            }
            "--scale" => args.scale = grab().parse().expect("--scale takes a float"),
            "--shards" => args.shards = grab().parse().expect("--shards takes a count"),
            "--drift-scale" => {
                args.drift_scale = grab().parse().expect("--drift-scale takes a float")
            }
            "--jm" => args.jackson_mudholkar = true,
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    // Four monitored days: days 1-2 are the warmup window (long enough
    // that the rate model's weekly rhythm does not read as day-over-day
    // anomalies), days 3-4 are scored, and at noon of day 4 the traffic
    // regime shifts.
    let total_bins = 4 * DAY;
    let drift_bin = 3 * DAY + DAY / 2;
    let config = DatasetConfig {
        seed: args.seed,
        n_bins: total_bins,
        sample_rate: 100,
        traffic_scale: args.scale,
        rate_noise: 0.02,
        anonymize: true,
    };
    let net = SyntheticNetwork::new(Topology::abilene(), config.clone());
    // The post-drift regime: a re-seeded rate model at a different scale —
    // flows re-weighted the way a routing change re-homes traffic.
    let drifted = SyntheticNetwork::new(
        Topology::abilene(),
        DatasetConfig {
            seed: args.seed ^ 0xD51F7,
            traffic_scale: args.scale * args.drift_scale,
            ..config.clone()
        },
    );
    let p = net.indexer().n_flows();

    let live_truth: Vec<InjectedAnomaly> = Schedule::paper_mix(args.seed ^ 0x5EED, args.events)
        .materialize(&net)
        .into_iter()
        .map(|event| InjectedAnomaly { event })
        .collect();
    println!(
        "== backbone monitor: {total_bins} bins over {p} flows, {} scheduled anomalies,",
        live_truth.len()
    );
    println!(
        "   {} ingest shards, drift injection at bin {drift_bin} (x{:.2} re-seeded traffic)",
        args.shards, args.drift_scale
    );

    let mut grid =
        ShardedGridBuilder::new(StreamConfig::new(p), args.shards).expect("sharded grid");
    let mut monitor = Monitor::new(
        p,
        MonitorConfig {
            diagnoser: DiagnoserConfig {
                alpha: args.alpha,
                threshold_policy: if args.jackson_mudholkar {
                    ThresholdPolicy::JacksonMudholkar
                } else {
                    ThresholdPolicy::Empirical
                },
                ..Default::default()
            },
            warmup_bins: 2 * DAY,
            window_bins: 3 * DAY,
            chunk_bins: 72,
            refit_interval: Some(DAY),
            drift: Some(Default::default()),
            // Flag verdicts as stale once the serving model is more than
            // a day past its refit cadence — only reachable when refits
            // keep failing, which is exactly when an operator should see
            // the Degraded state.
            staleness_budget: Some(2 * DAY),
            ..Default::default()
        },
    )
    .expect("monitor");

    // Fault injection: dead-collector outages as a seeded schedule. The
    // plan is data — `drop_bins()` below is the injected ground truth the
    // alert classifier checks against, instead of replaying RNG draws.
    let outage_plan =
        FaultPlan::random_outages(args.seed ^ 0xFA11, total_bins, args.missing_chance);
    let dropped_bins = outage_plan.drop_bins();
    let mut injector = FaultInjector::new(&outage_plan);

    let mut alerts: Vec<(usize, Outcome)> = Vec::new();
    let mut packets_offered: u64 = 0;
    let mut refit_log: Vec<(usize, RefitTrigger)> = Vec::new();
    let mut batch = Vec::new();
    let started = Instant::now();

    for bin in 0..total_bins {
        let source = if bin >= drift_bin { &drifted } else { &net };
        batch.clear();
        for flow in 0..p {
            for pkt in source.cell_packets(bin, flow, &live_truth) {
                batch.push((flow, pkt));
            }
        }
        // A dropped bin yields no deliveries; the watermark still seals
        // it as a zero row for the monitor to flag.
        for delivery in injector.deliver_batch(bin, &batch) {
            packets_offered += delivery.packets.len() as u64;
            grid.offer_packets(&delivery.packets).expect("offer batch");
        }
        // The first packet of the next bin advances the event-time
        // watermark past this bin's boundary and seals it.
        for sealed in grid.advance_watermark((bin + 1) as u64 * BIN_SECS) {
            let step = monitor.observe_bin(&sealed).expect("observe");
            if let Verdict::Anomalous(diag) = &step.verdict {
                let outcome = if dropped_bins.contains(&diag.bin) {
                    Outcome::InjectedOutage
                } else if live_truth.iter().any(|t| t.bins().contains(&diag.bin)) {
                    Outcome::Truth
                } else if diag.bin >= drift_bin {
                    Outcome::DriftTransient
                } else {
                    Outcome::FalseAlarm
                };
                let kind = match (diag.methods.volume(), diag.methods.entropy) {
                    (true, true) => "volume+entropy",
                    (true, false) => "volume only",
                    _ => "entropy only",
                };
                let blamed = diag
                    .flows
                    .first()
                    .map(|f| format!("flow {}", f.flow))
                    .unwrap_or_else(|| "no flow blamed".to_string());
                println!(
                    "   [bin {:>4}] ALERT ({kind}): entropy SPE {:.3e}, {blamed}{}",
                    diag.bin,
                    diag.entropy_spe,
                    match outcome {
                        Outcome::Truth => "",
                        Outcome::InjectedOutage => "  ** injected collector outage **",
                        Outcome::DriftTransient => "  ** stale model (post-drift) **",
                        Outcome::FalseAlarm => "  ** no ground truth **",
                    }
                );
                alerts.push((diag.bin, outcome));
            }
            if let Some(refit) = &step.refit {
                refit_log.push((step.bin, refit.trigger));
                match &refit.outcome {
                    RefitOutcome::Swapped => println!(
                        "   [bin {:>4}] REFIT ({:?}): model swapped over a {}-bin window{}",
                        step.bin,
                        refit.trigger,
                        refit.window_bins,
                        if refit.warnings.is_empty() { "" } else { ":" }
                    ),
                    RefitOutcome::Failed(e) => println!(
                        "   [bin {:>4}] REFIT ({:?}) FAILED, old model keeps serving: {e}",
                        step.bin, refit.trigger
                    ),
                }
                for (detector, warning) in &refit.warnings {
                    println!("              sharpness[{detector}]: {warning}");
                }
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();

    // ------------------------------------------------------- wrap-up ----
    let count = |o: Outcome| alerts.iter().filter(|(_, x)| *x == o).count();
    let truth_bins: usize = live_truth
        .iter()
        .flat_map(|t| t.bins())
        .filter(|&b| b >= 2 * DAY)
        .count();
    assert_eq!(monitor.state(), MonitorState::Fitted);
    println!(
        "\n== streamed {} bins ({} scored) in {elapsed:.1}s:",
        monitor.bins_observed(),
        monitor.bins_scored()
    );
    println!(
        "   {:.2e} packets/s offered through {} shards, {} bins dropped by fault injection",
        packets_offered as f64 / elapsed.max(1e-9),
        grid.shards(),
        dropped_bins.len()
    );
    println!(
        "   {} refits: {}",
        monitor.refits(),
        refit_log
            .iter()
            .map(|(bin, t)| format!("{t:?}@{bin}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "   {} alerts | {} matching ground truth | {} on injected outages | {} post-drift transients | {} false alarms | {} anomalous bins scheduled post-warmup",
        alerts.len(),
        count(Outcome::Truth),
        count(Outcome::InjectedOutage),
        count(Outcome::DriftTransient),
        count(Outcome::FalseAlarm),
        truth_bins
    );
    println!(
        "   grid: {} late events dropped, {} rejected offers, {} bins finalized, watermark at {}s",
        grid.late_events(),
        grid.rejected_events(),
        grid.finalized_bins(),
        grid.watermark()
    );
    let health = monitor.health();
    println!(
        "   health: {:?}, model {} bins old (budget {:?}), {} quarantined bins, {}/{} refits failed",
        health.state,
        health.model_age_bins,
        health.staleness_budget,
        health.quarantined_bins,
        health.failed_refits,
        health.refits + health.failed_refits,
    );
    println!(
        "   (pre-drift false alarms cluster where the weekly rate rhythm outruns the training\n\
         \u{20}   window and fade after the drift-triggered refit; drift transients persist while\n\
         \u{20}   the {}-bin window rolls into the post-drift regime -- by design, not by accident)",
        monitor.config().window_bins
    );
}
