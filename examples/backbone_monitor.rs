//! Backbone monitor: a realistic mixed-anomaly day with fault injection.
//!
//! Generates a day of network-wide traffic carrying a Table 3-style mix of
//! anomalies (alpha flows, DOS, scans, outages, ...), diagnoses it, and
//! cross-tabulates detections against ground truth. In the spirit of
//! smoltcp's examples, adverse conditions can be injected from the command
//! line:
//!
//! ```sh
//! cargo run --release --example backbone_monitor -- \
//!     [--seed N] [--alpha 0.999] [--events N] [--missing-chance PCT]
//! ```
//!
//! `--missing-chance` randomly blanks whole bins (collector outages /
//! missing data, which the paper's Geant archive also suffered) to show
//! the detector coping with imperfect inputs.

use entromine::net::Topology;
use entromine::synth::{Dataset, DatasetConfig, Schedule, SyntheticNetwork};
use entromine::{label_breakdown, match_truth, Diagnoser, DiagnoserConfig, MatchOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Args {
    seed: u64,
    alpha: f64,
    events: usize,
    missing_chance: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 1,
        alpha: 0.999,
        events: 24,
        missing_chance: 0.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--seed" => args.seed = grab().parse().expect("--seed takes a u64"),
            "--alpha" => args.alpha = grab().parse().expect("--alpha takes a float"),
            "--events" => args.events = grab().parse().expect("--events takes a count"),
            "--missing-chance" => {
                args.missing_chance = grab()
                    .parse::<f64>()
                    .expect("--missing-chance takes a percent")
                    / 100.0
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let config = DatasetConfig {
        seed: args.seed,
        n_bins: 288,
        sample_rate: 100,
        traffic_scale: 1.0,
        rate_noise: 0.01,
        anonymize: true,
    };

    println!("scheduling ~{} anomalies over one day ...", args.events);
    let net = SyntheticNetwork::new(Topology::abilene(), config.clone());
    let events = Schedule::paper_mix(args.seed ^ 0xABCD, args.events).materialize(&net);
    println!("  placed {} events", events.len());

    println!("generating traffic ...");
    let mut dataset = Dataset::generate(Topology::abilene(), config, events);

    // Fault injection: blank whole bins to emulate collector outages.
    if args.missing_chance > 0.0 {
        let mut rng = StdRng::seed_from_u64(args.seed ^ 0xFA11);
        let mut blanked = 0;
        for bin in 0..dataset.n_bins() {
            if rng.random::<f64>() < args.missing_chance {
                for flow in 0..dataset.n_flows() {
                    for f in entromine::entropy::FEATURES {
                        dataset.tensor.set(bin, flow, f, 0.0);
                    }
                }
                blanked += 1;
            }
        }
        println!("  fault injection: blanked {blanked} bins of flow data");
    }

    println!("fitting and diagnosing at alpha = {} ...", args.alpha);
    let cfg = DiagnoserConfig {
        alpha: args.alpha,
        ..Default::default()
    };
    let fitted = Diagnoser::new(cfg).fit(&dataset).expect("fit");
    let report = fitted.diagnose(&dataset).expect("diagnose");

    println!(
        "\n== detections: {} total | volume-only {} | entropy-only {} | both {}",
        report.total(),
        report.volume_only(),
        report.entropy_only(),
        report.both()
    );

    let outcomes = match_truth(&report, &dataset.truth);
    let false_alarms = outcomes
        .iter()
        .filter(|o| matches!(o, MatchOutcome::FalseAlarm))
        .count();
    println!(
        "== {} of {} detections match ground truth; {} false alarms ({:.0}%)",
        report.total() - false_alarms,
        report.total(),
        false_alarms,
        100.0 * false_alarms as f64 / report.total().max(1) as f64
    );

    println!("\n== per-label breakdown (paper Table 3 shape):");
    println!(
        "{:>18} {:>9} {:>10} {:>10} {:>7}",
        "label", "injected", "volume", "+entropy", "missed"
    );
    for row in label_breakdown(&report, &dataset.truth) {
        println!(
            "{:>18} {:>9} {:>10} {:>10} {:>7}",
            row.label.name(),
            row.injected,
            row.found_in_volume,
            row.additional_in_entropy,
            row.missed
        );
    }
}
