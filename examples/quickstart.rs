//! Quickstart: detect, identify, and read a single injected anomaly.
//!
//! Builds a small Abilene-shaped synthetic network, injects one port scan,
//! runs the full diagnosis pipeline, and prints what it found.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use entromine::net::Topology;
use entromine::synth::{AnomalyEvent, AnomalyLabel, Dataset, DatasetConfig};
use entromine::{Diagnoser, DiagnoserConfig};

fn main() {
    // A day of 5-minute bins on an 11-PoP Abilene-shaped backbone,
    // 1-in-100 packet sampling, paper-scale traffic.
    let config = DatasetConfig {
        seed: 7,
        n_bins: 288,
        sample_rate: 100,
        traffic_scale: 1.0,
        rate_noise: 0.01,
        anonymize: true, // Abilene masks the low 11 address bits
    };

    // One port scan, 40 minutes into the afternoon, against OD flow 58.
    let scan = AnomalyEvent {
        label: AnomalyLabel::PortScan,
        start_bin: 200,
        duration: 1,
        flows: vec![58],
        packets_per_cell: 1500.0,
        seed: 99,
    };

    println!("generating one day of synthetic Abilene traffic ...");
    let dataset = Dataset::generate(Topology::abilene(), config, vec![scan]);
    println!(
        "  {} bins x {} OD flows, ~{:.0} sampled packets per cell",
        dataset.n_bins(),
        dataset.n_flows(),
        dataset.net.config().mean_sampled_packets_per_bin()
    );

    println!("fitting the multiway subspace model (m = 10, alpha = 0.999) ...");
    let diagnoser = Diagnoser::new(DiagnoserConfig::default());
    let fitted = diagnoser.fit(&dataset).expect("fit");
    println!(
        "  normal subspace captures {:.1}% of entropy variance",
        100.0 * fitted.entropy_model().inner().explained_variance()
    );

    let report = fitted.diagnose(&dataset).expect("diagnose");
    println!(
        "\n{} anomalous bins (volume-only {}, entropy-only {}, both {}):",
        report.total(),
        report.volume_only(),
        report.entropy_only(),
        report.both()
    );
    println!(
        "{:>5} {:>8} {:>12} {:>10} {:>28}",
        "bin", "methods", "entropy SPE", "flow", "residual entropy point"
    );
    for d in &report.diagnoses {
        let methods = format!(
            "{}{}{}",
            if d.methods.bytes { "B" } else { "-" },
            if d.methods.packets { "P" } else { "-" },
            if d.methods.entropy { "E" } else { "-" }
        );
        let flow = d
            .flows
            .first()
            .map(|f| {
                let od = dataset.net.indexer().pair(f.flow);
                let pops = dataset.net.topology().pops();
                format!("{}->{}", pops[od.origin].code, pops[od.dest].code)
            })
            .unwrap_or_else(|| "-".into());
        let point = d
            .point
            .map(|p| format!("[{:+.2} {:+.2} {:+.2} {:+.2}]", p[0], p[1], p[2], p[3]))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>5} {:>8} {:>12.3e} {:>10} {:>28}",
            d.bin, methods, d.entropy_spe, flow, point
        );
    }

    if let Some(hit) = report.diagnoses.iter().find(|d| d.bin == 200) {
        println!("\nthe injected port scan at bin 200 was detected;");
        if let Some(p) = hit.point {
            println!(
                "its entropy-space position [srcIP srcPort dstIP dstPort] = \
                 [{:+.2} {:+.2} {:+.2} {:+.2}]",
                p[0], p[1], p[2], p[3]
            );
            println!(
                "(dstPort residual up = ports dispersed; dstIP residual down = \
                 one victim — the Table 1 port-scan signature)"
            );
        }
    } else {
        println!("\nWARNING: the injected port scan was NOT detected");
    }
}
