//! Worm outbreak: sensitivity of entropy detection to attack intensity.
//!
//! A miniature of the paper's Figure 5(c): the Table 4 worm-scan trace
//! (141 packets/sec, port 1433) is injected into OD flows at increasing
//! thinning factors, and the detection rate of volume-only vs
//! volume+entropy detection is reported per factor. Entropy keeps
//! detecting the worm well after it has become invisible in volume.
//!
//! ```sh
//! cargo run --release --example worm_outbreak -- [--seed N] [--flows N]
//! ```

use entromine::net::{OdPair, Topology};
use entromine::synth::distr::poisson;
use entromine::synth::traces::{sampled_attack_packets, sampled_count};
use entromine::synth::{Dataset, DatasetConfig, TraceKind};
use entromine::Diagnoser;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut seed = 3u64;
    let mut flows_to_try = 30usize;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let val = it
            .next()
            .unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--seed" => seed = val.parse().expect("u64"),
            "--flows" => flows_to_try = val.parse().expect("count"),
            other => panic!("unknown flag {other}"),
        }
    }

    let config = DatasetConfig {
        seed,
        n_bins: 288,
        sample_rate: 100,
        traffic_scale: 1.0,
        rate_noise: 0.01,
        anonymize: true,
    };
    println!("generating one clean day of Abilene-shaped traffic ...");
    let dataset = Dataset::clean(Topology::abilene(), config);
    let fitted = Diagnoser::default().fit(&dataset).expect("fit");
    let report = fitted.diagnose(&dataset).expect("diagnose");
    let (t_bytes, t_packets, t_entropy) = report.thresholds;

    let kind = TraceKind::WormScan;
    let bin = 150usize;
    let cfg = dataset.net.config();
    println!(
        "injecting the {} trace ({} pkts/s raw) into {} OD flows per thinning factor\n",
        kind.name(),
        kind.intensity_pps(),
        flows_to_try
    );
    println!(
        "{:>9} {:>14} {:>12} {:>16} {:>18}",
        "thinning", "pkts/bin", "% of flow", "volume detects", "vol+entropy detects"
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0x3013);
    for thinning in [1u64, 5, 10, 50, 100, 500] {
        let mean_inject = sampled_count(kind, thinning, cfg.sample_rate, 300, cfg.traffic_scale);
        let mut vol_hits = 0usize;
        let mut any_hits = 0usize;
        for flow in 0..flows_to_try.min(dataset.n_flows()) {
            let od: OdPair = dataset.net.indexer().pair(flow);
            let n = poisson(&mut rng, mean_inject);
            let pkts = sampled_attack_packets(
                kind,
                dataset.net.plan(),
                od,
                n,
                bin as u64 * 300,
                seed ^ (flow as u64) << 8 ^ thinning,
            );
            let what = dataset.whatif_rows(bin, &[(flow, &pkts)]);
            let vol = fitted.bytes_model().spe(&what.bytes).expect("spe") > t_bytes
                || fitted.packets_model().spe(&what.packets).expect("spe") > t_packets;
            let ent = fitted.entropy_model().spe(&what.entropy).expect("spe") > t_entropy;
            if vol {
                vol_hits += 1;
            }
            if vol || ent {
                any_hits += 1;
            }
        }
        let tried = flows_to_try.min(dataset.n_flows());
        let pct_of_flow = 100.0 * mean_inject / cfg.mean_sampled_packets_per_bin();
        println!(
            "{:>9} {:>14.1} {:>11.2}% {:>15.0}% {:>17.0}%",
            thinning,
            mean_inject,
            pct_of_flow,
            100.0 * vol_hits as f64 / tried as f64,
            100.0 * any_hits as f64 / tried as f64
        );
    }
    println!(
        "\n(the entropy detector keeps finding the worm after thinning has made it\n\
         a fraction of a percent of flow traffic — the paper's Figure 5c shape)"
    );
}
