//! Monitor lifecycle — rolling refits without drops, double-scores, or
//! drift from the offline fit.
//!
//! Three contracts of the lifecycle-managed monitor:
//!
//! 1. **Accounting.** Every observed bin yields exactly one verdict:
//!    warmup bins are absorbed (never silently dropped), every post-fit
//!    bin is scored exactly once, and automatic refits fire on schedule
//!    against a window that has genuinely slid (oldest chunks rolled out).
//! 2. **Auditability.** A refit is a pure function of the push history:
//!    replaying the same bins into a fresh [`TrainingWindow`] offline and
//!    fitting it reproduces the online model **bit for bit** — the
//!    detections the live monitor emitted after its refit are exactly the
//!    detections the offline model produces on the same bins.
//! 3. **Plane-independence.** Feeding the monitor from the sharded
//!    ingest plane (packets → `ShardedGridBuilder` → `FinalizedBin`)
//!    yields bit-identical steps to feeding it the dataset's stored rows
//!    directly.

use entromine::entropy::shard::ShardedGridBuilder;
use entromine::entropy::sketch::SketchHistogram;
use entromine::entropy::{AccumulatorPolicy, StreamConfig};
use entromine::net::Topology;
use entromine::synth::{AnomalyEvent, AnomalyLabel, Dataset, DatasetConfig};
use entromine::{
    DiagnoserConfig, Monitor, MonitorConfig, MonitorState, MonitorStep, RefitOutcome, RefitTrigger,
    TrainingWindow, Verdict,
};

const BIN_SECS: u64 = DatasetConfig::BIN_SECS;

fn dataset(seed: u64, n_bins: usize) -> Dataset {
    let config = DatasetConfig {
        seed,
        n_bins,
        sample_rate: 100,
        traffic_scale: 0.03,
        rate_noise: 0.03,
        anonymize: false,
    };
    let events = vec![
        AnomalyEvent {
            label: AnomalyLabel::PortScan,
            start_bin: 70,
            duration: 1,
            flows: vec![2],
            packets_per_cell: 220.0,
            seed: 5,
        },
        AnomalyEvent {
            label: AnomalyLabel::AlphaFlow,
            start_bin: 125,
            duration: 2,
            flows: vec![6],
            packets_per_cell: 420.0,
            seed: 6,
        },
    ];
    Dataset::generate(Topology::line(3), config, events)
}

fn monitor_config() -> MonitorConfig {
    MonitorConfig {
        diagnoser: DiagnoserConfig {
            refit_rounds: 1,
            ..Default::default()
        },
        warmup_bins: 40,
        window_bins: 80,
        chunk_bins: 20,
        refit_interval: Some(40),
        // Clean traffic: isolate the scheduled trigger so refit bins are
        // deterministic for the offline replication below.
        drift: None,
        ..Default::default()
    }
}

/// Runs a monitor over the dataset's stored rows, returning every step.
fn run_monitor_direct(d: &Dataset, config: MonitorConfig) -> (Monitor, Vec<MonitorStep>) {
    let mut m = Monitor::new(d.n_flows(), config).expect("monitor");
    let mut steps = Vec::new();
    for bin in 0..d.n_bins() {
        let step = m
            .observe_rows(
                bin,
                d.volumes.bytes().row(bin),
                d.volumes.packets().row(bin),
                &d.tensor.unfolded_row(bin),
            )
            .expect("observe");
        steps.push(step);
    }
    (m, steps)
}

#[test]
fn no_bin_dropped_or_double_scored_and_window_refits_fire() {
    let d = dataset(11, 160);
    let (m, steps) = run_monitor_direct(&d, monitor_config());

    // Exactly one step per bin, in order.
    assert_eq!(steps.len(), 160);
    for (bin, step) in steps.iter().enumerate() {
        assert_eq!(step.bin, bin, "steps must track bins one-to-one");
    }
    // Warmup bins absorbed, everything after scored exactly once.
    for (bin, step) in steps.iter().enumerate() {
        match &step.verdict {
            Verdict::Warmup { .. } => assert!(bin < 40, "bin {bin} unscored after warmup"),
            _ => assert!(bin >= 40, "bin {bin} scored during warmup"),
        }
    }
    assert_eq!(m.bins_observed(), 160);
    assert_eq!(m.bins_scored(), 120);
    assert_eq!(m.state(), MonitorState::Fitted);

    // The warmup fit plus scheduled refits at the 40-scored-bin cadence.
    let refit_bins: Vec<(usize, RefitTrigger)> = steps
        .iter()
        .filter_map(|s| s.refit.as_ref().map(|r| (s.bin, r.trigger)))
        .collect();
    assert_eq!(
        refit_bins,
        vec![
            (39, RefitTrigger::Warmup),
            (79, RefitTrigger::Scheduled),
            (119, RefitTrigger::Scheduled),
            (159, RefitTrigger::Scheduled),
        ]
    );
    for step in &steps {
        if let Some(r) = &step.refit {
            assert!(matches!(r.outcome, RefitOutcome::Swapped));
        }
    }
    assert_eq!(m.refits(), 4);
    // The bin-119 refit trained on a window that had genuinely slid: 80
    // bins of capacity over 120 pushed bins.
    let late_refit = steps[119].refit.as_ref().unwrap();
    assert!(late_refit.window_bins <= 80);
    // Both injected anomalies were scored (the second lands after the
    // slid-window refit).
    assert!(steps[70].diagnosis().is_some(), "port scan missed");
    assert!(
        steps[125].diagnosis().is_some() || steps[126].diagnosis().is_some(),
        "alpha flow missed"
    );
}

#[test]
fn online_refit_is_bit_identical_to_offline_window_fit() {
    let d = dataset(11, 160);
    let config = monitor_config();
    let (_, steps) = run_monitor_direct(&d, config);

    // Reproduce the bin-119 refit offline: replay the same push history
    // into a fresh window (same capacity, same chunking — the state is a
    // pure function of the pushes) and fit it with the same config. The
    // monitor warm-starts every refit from its serving model, so the
    // replay must walk the same warm chain: the bin-39 warmup fit is
    // cold (no serving model), bin 79 warms from it, bin 119 warms from
    // bin 79's — same seeds, same bases, bit-identical models.
    let mut window =
        TrainingWindow::new(d.n_flows(), config.window_bins, config.chunk_bins).expect("window");
    let mut offline = None;
    for bin in 0..=119 {
        window
            .push_bin(
                bin,
                d.volumes.bytes().row(bin),
                d.volumes.packets().row(bin),
                &d.tensor.unfolded_row(bin),
            )
            .expect("push");
        if bin == 39 || bin == 79 || bin == 119 {
            let (fitted, _trace) = window
                .fit_warm(&config.diagnoser, offline.as_ref())
                .expect("offline fit");
            offline = Some(fitted);
        }
    }
    let offline = offline.expect("warm chain fitted");
    let mut scorer = offline
        .streaming(config.diagnoser.alpha)
        .expect("offline scorer");

    // Bins 120..159 were scored live by the model from the bin-119 refit
    // (the bin-159 refit lands after the last score). The offline model
    // must reproduce every verdict bit for bit.
    let mut compared = 0;
    for (bin, step) in steps.iter().enumerate().take(160).skip(120) {
        let offline_diag = scorer
            .score_rows(
                bin,
                d.volumes.bytes().row(bin),
                d.volumes.packets().row(bin),
                &d.tensor.unfolded_row(bin),
            )
            .expect("offline score");
        let live_diag = step.diagnosis();
        match (live_diag, &offline_diag) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.methods, b.methods, "methods at bin {bin}");
                assert_eq!(a.entropy_spe, b.entropy_spe, "entropy SPE at bin {bin}");
                assert_eq!(a.bytes_spe, b.bytes_spe, "bytes SPE at bin {bin}");
                assert_eq!(a.packets_spe, b.packets_spe, "packets SPE at bin {bin}");
                assert_eq!(
                    a.flows.iter().map(|f| f.flow).collect::<Vec<_>>(),
                    b.flows.iter().map(|f| f.flow).collect::<Vec<_>>(),
                    "blamed flows at bin {bin}"
                );
                assert_eq!(a.point, b.point, "entropy-space point at bin {bin}");
            }
            (a, b) => panic!("bin {bin}: live {a:?} vs offline {b:?}"),
        }
        compared += 1;
    }
    assert_eq!(compared, 40);
    assert!(
        (120..160).any(|bin| steps[bin].diagnosis().is_some()),
        "fixture must detect something post-refit for the test to bite"
    );
}

#[test]
fn sharded_ingest_feed_matches_direct_rows_feed() {
    let d = dataset(23, 120);
    let mut config = monitor_config();
    config.warmup_bins = 30;
    config.window_bins = 60;
    config.refit_interval = Some(30);
    let p = d.n_flows();

    let (_, direct_steps) = run_monitor_direct(&d, config);

    // The same dataset streamed as packets through the sharded plane.
    let mut grid = ShardedGridBuilder::new(StreamConfig::new(p), 4).expect("grid");
    let mut m = Monitor::new(p, config).expect("monitor");
    let mut sharded_steps = Vec::new();
    for bin in 0..d.n_bins() {
        let mut batch = Vec::new();
        for flow in 0..p {
            for pkt in d.net.cell_packets(bin, flow, &d.truth) {
                batch.push((flow, pkt));
            }
        }
        grid.offer_packets(&batch).expect("offer");
        for sealed in grid.advance_watermark((bin + 1) as u64 * BIN_SECS) {
            sharded_steps.push(m.observe_bin(&sealed).expect("observe"));
        }
    }
    assert_eq!(grid.late_events(), 0);
    assert_eq!(direct_steps.len(), sharded_steps.len());
    for (a, b) in direct_steps.iter().zip(&sharded_steps) {
        assert_eq!(a.bin, b.bin);
        match (&a.verdict, &b.verdict) {
            (Verdict::Warmup { remaining: ra }, Verdict::Warmup { remaining: rb }) => {
                assert_eq!(ra, rb)
            }
            (Verdict::Clean, Verdict::Clean) => {}
            (Verdict::Anomalous(da), Verdict::Anomalous(db)) => {
                assert_eq!(da.methods, db.methods, "methods at bin {}", a.bin);
                assert_eq!(da.entropy_spe, db.entropy_spe, "SPE at bin {}", a.bin);
                assert_eq!(da.point, db.point, "point at bin {}", a.bin);
            }
            (va, vb) => panic!("bin {}: {va:?} vs {vb:?}", a.bin),
        }
        assert_eq!(
            a.refit.is_some(),
            b.refit.is_some(),
            "refit at bin {}",
            a.bin
        );
    }
}

#[test]
fn sketched_ingest_plane_runs_the_lifecycle_under_a_memory_ceiling() {
    let d = dataset(23, 120);
    let mut config = monitor_config();
    config.warmup_bins = 30;
    config.window_bins = 60;
    config.refit_interval = Some(30);
    let p = d.n_flows();

    let (_, direct_steps) = run_monitor_direct(&d, config);

    // Generous budget: every cell store stays under budget, the sketch
    // never raises its sampling level, and the plane the monitor opens
    // from its own DiagnoserConfig is bit-identical to the exact tier.
    let budget = entromine::entropy::DEFAULT_BUDGET;
    config.diagnoser.accumulator = AccumulatorPolicy::Sketched { budget };
    let mut m = Monitor::new(p, config).expect("monitor");
    let mut plane = m
        .ingest_plane(StreamConfig::new(1), 4)
        .expect("sketched plane");
    assert_eq!(plane.policy(), AccumulatorPolicy::Sketched { budget });

    // Per-store ceiling, summed over every open (shard, flow, feature)
    // store the plane can hold at once.
    let ceiling = SketchHistogram::heap_ceiling(budget);
    let mut peak = 0usize;
    let mut sketched_steps = Vec::new();
    for bin in 0..d.n_bins() {
        let mut batch = Vec::new();
        for flow in 0..p {
            for pkt in d.net.cell_packets(bin, flow, &d.truth) {
                batch.push((flow, pkt));
            }
        }
        plane.offer_packets(&batch).expect("offer");
        peak = peak.max(plane.accumulator_heap_bytes());
        assert!(
            plane.accumulator_heap_bytes() <= plane.shards() * plane.open_bins() * p * 4 * ceiling,
            "bin {bin}: sketched plane exceeded its accumulator ceiling"
        );
        for sealed in plane.advance_watermark((bin + 1) as u64 * BIN_SECS) {
            sketched_steps.push(m.observe_bin(&sealed).expect("observe"));
        }
    }
    assert!(peak > 0, "heap gauge must have registered the open stores");
    assert_eq!(plane.late_events(), 0);

    // Lifecycle contracts hold on the sketched feed: one step per bin and
    // at this budget every verdict matches the direct-rows feed exactly.
    assert_eq!(sketched_steps.len(), direct_steps.len());
    assert_eq!(m.bins_observed(), d.n_bins() as u64);
    assert_eq!(m.state(), MonitorState::Fitted);
    for (a, b) in direct_steps.iter().zip(&sketched_steps) {
        assert_eq!(a.bin, b.bin);
        match (&a.verdict, &b.verdict) {
            (Verdict::Warmup { remaining: ra }, Verdict::Warmup { remaining: rb }) => {
                assert_eq!(ra, rb)
            }
            (Verdict::Clean, Verdict::Clean) => {}
            (Verdict::Anomalous(da), Verdict::Anomalous(db)) => {
                assert_eq!(da.methods, db.methods, "methods at bin {}", a.bin);
                assert_eq!(da.entropy_spe, db.entropy_spe, "SPE at bin {}", a.bin);
                assert_eq!(da.point, db.point, "point at bin {}", a.bin);
            }
            (va, vb) => panic!("bin {}: {va:?} vs {vb:?}", a.bin),
        }
    }

    // Tight budget: the sketch genuinely subsamples, yet the lifecycle
    // still completes with one verdict per bin, refits on schedule, and
    // the injected port scan is still caught.
    config.diagnoser.accumulator = AccumulatorPolicy::Sketched { budget: 64 };
    let mut m = Monitor::new(p, config).expect("monitor");
    let mut plane = m
        .ingest_plane(StreamConfig::new(1), 4)
        .expect("tight plane");
    let tight_ceiling = SketchHistogram::heap_ceiling(64);
    let mut steps = Vec::new();
    for bin in 0..d.n_bins() {
        let mut batch = Vec::new();
        for flow in 0..p {
            for pkt in d.net.cell_packets(bin, flow, &d.truth) {
                batch.push((flow, pkt));
            }
        }
        plane.offer_packets(&batch).expect("offer");
        assert!(
            plane.accumulator_heap_bytes()
                <= plane.shards() * plane.open_bins() * p * 4 * tight_ceiling,
            "bin {bin}: tight plane exceeded its accumulator ceiling"
        );
        for sealed in plane.advance_watermark((bin + 1) as u64 * BIN_SECS) {
            steps.push(m.observe_bin(&sealed).expect("observe"));
        }
    }
    assert_eq!(steps.len(), d.n_bins());
    for (bin, step) in steps.iter().enumerate() {
        assert_eq!(step.bin, bin);
        match &step.verdict {
            Verdict::Warmup { .. } => assert!(bin < 30, "bin {bin} unscored after warmup"),
            _ => assert!(bin >= 30, "bin {bin} scored during warmup"),
        }
    }
    assert_eq!(m.refits(), 4, "warmup fit plus three scheduled refits");
    assert!(
        steps[70].diagnosis().is_some() || steps[71].diagnosis().is_some(),
        "port scan missed on the tight-budget sketched plane"
    );
}
