//! Warm vs cold refit equivalence — the contract of the warm-started
//! incremental refit engine.
//!
//! [`TrainingWindow::fit`] (cold) is the executable spec; `fit_warm` with
//! a serving model is the production path the [`Monitor`] takes at every
//! refit. The warm engine may seed eigensolves from the previous basis
//! and produce trimmed-round moments by downdating flagged rows, but it
//! must land on the same model up to iteration-level noise:
//!
//! * eigenpairs agree to `1e-8` (relative, sign-agnostic) and
//!   Q-thresholds to `1e-10` relative, across drift magnitudes from
//!   "none" to a re-seeded ×1.4 level shift;
//! * alarm decisions on the monitor-lifecycle scenario are identical;
//! * warm fitting itself is a pure function of (push history, serving
//!   model): two identical replays agree bit for bit.
//!
//! The suite runs every check under both `FitStrategy::Auto` and
//! `FitStrategy::Partial`; set `ENTROMINE_REFIT_STRATEGY=auto|partial`
//! to pin one (the CI matrix runs both).

use entromine::net::Topology;
use entromine::synth::{AnomalyEvent, AnomalyLabel, Dataset, DatasetConfig};
use entromine::{DiagnoserConfig, FitStrategy, FittedDiagnoser, TrainingWindow};

/// Wide enough that the partial engine genuinely runs on the entropy
/// model (4p = 128 columns) under `Auto`, and every model under
/// `Partial`.
const P: usize = 32;

fn strategies() -> Vec<FitStrategy> {
    match std::env::var("ENTROMINE_REFIT_STRATEGY").as_deref() {
        Ok("auto") => vec![FitStrategy::Auto],
        Ok("partial") => vec![FitStrategy::Partial],
        _ => vec![FitStrategy::Auto, FitStrategy::Partial],
    }
}

fn config(strategy: FitStrategy) -> DiagnoserConfig {
    DiagnoserConfig {
        dim: entromine::subspace::DimSelection::Fixed(4),
        strategy,
        refit_rounds: 1,
        ..Default::default()
    }
}

/// Deterministic synthetic diurnal bins: shared latent structure across
/// flows (per-flow gains), a diurnal phase, arithmetic jitter — no RNG,
/// so the fixture is reproducible by construction. `shift` moves only
/// even-indexed flows (a structural drift, visible to the residual
/// subspace), and `spike_bin` injects one outlier bin for the trimming
/// rounds to flag.
fn push_bins(
    w: &mut TrainingWindow,
    bins: std::ops::Range<usize>,
    seed: u64,
    shift: f64,
    spike_bin: Option<usize>,
) {
    let gain = |i: usize| 1.0 + ((i * 37 + 11) % 101) as f64 / 101.0;
    for bin in bins {
        let phase = (bin as f64 / 48.0) * std::f64::consts::TAU;
        let jit = |i: usize| {
            let x = (bin as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add((i as u64).wrapping_mul(1442695040888963407))
                .wrapping_add(seed.wrapping_mul(0x9E3779B97F4A7C15));
            ((x >> 33) % 1009) as f64 / 1009.0
        };
        let skew = |i: usize| if i.is_multiple_of(2) { shift } else { 0.0 };
        let spike = if spike_bin == Some(bin) { 6.0 } else { 0.0 };
        let bytes: Vec<f64> = (0..P)
            .map(|i| {
                1e5 * gain(i) * (1.0 + 0.1 * phase.sin()) * (1.0 + skew(i))
                    + 300.0 * jit(i)
                    + if i == 3 { spike * 1e5 } else { 0.0 }
            })
            .collect();
        let packets: Vec<f64> = bytes.iter().map(|b| b / 100.0).collect();
        let entropy: Vec<f64> = (0..4 * P)
            .map(|i| {
                gain(i % P) * (2.0 + 0.2 * phase.cos())
                    + 0.02 * jit(i)
                    + skew(i % P)
                    + if i % P == 3 { spike } else { 0.0 }
            })
            .collect();
        w.push_bin(bin, &bytes, &packets, &entropy).unwrap();
    }
}

fn window(
    bins: std::ops::Range<usize>,
    seed: u64,
    shift: f64,
    spike: Option<usize>,
) -> TrainingWindow {
    let mut w = TrainingWindow::new(P, 64, 16).unwrap();
    push_bins(&mut w, bins, seed, shift, spike);
    w
}

/// Asserts the warm fit matches the cold fit up to iteration-level
/// noise: eigenpairs to 1e-8 relative (values and sign-agnostic axis
/// alignment), Q-thresholds to 1e-10 relative.
fn assert_equivalent(cold: &FittedDiagnoser, warm: &FittedDiagnoser, alpha: f64, what: &str) {
    let pairs: [(&str, &entromine::subspace::SubspaceModel, f64, f64); 3] = [
        (
            "bytes",
            cold.bytes_model(),
            cold.bytes_model().threshold(alpha).unwrap(),
            warm.bytes_model().threshold(alpha).unwrap(),
        ),
        (
            "packets",
            cold.packets_model(),
            cold.packets_model().threshold(alpha).unwrap(),
            warm.packets_model().threshold(alpha).unwrap(),
        ),
        (
            "entropy",
            cold.entropy_model().inner(),
            cold.entropy_model().threshold(alpha).unwrap(),
            warm.entropy_model().threshold(alpha).unwrap(),
        ),
    ];
    let warm_inner = [
        warm.bytes_model(),
        warm.packets_model(),
        warm.entropy_model().inner(),
    ];
    for ((name, cold_model, t_cold, t_warm), warm_model) in pairs.iter().zip(warm_inner) {
        assert!(
            (t_warm - t_cold).abs() <= 1e-10 * t_cold.abs(),
            "{what}/{name}: Q-threshold drifted: cold {t_cold} vs warm {t_warm}"
        );
        let (sc, sw) = (cold_model.pca().spectrum(), warm_model.pca().spectrum());
        let m = cold_model.normal_dim();
        assert_eq!(m, warm_model.normal_dim(), "{what}/{name}: normal_dim");
        let lead = sc.values()[0].max(1e-300);
        for axis in 0..m {
            let (lc, lw) = (sc.values()[axis], sw.values()[axis]);
            assert!(
                (lw - lc).abs() <= 1e-8 * lead,
                "{what}/{name}: eigenvalue {axis}: cold {lc} vs warm {lw}"
            );
            let (vc, vw) = (sc.vectors(), sw.vectors());
            let dot: f64 = (0..vc.rows()).map(|r| vc[(r, axis)] * vw[(r, axis)]).sum();
            assert!(
                dot.abs() >= 1.0 - 1e-8,
                "{what}/{name}: axis {axis} misaligned: |dot| = {}",
                dot.abs()
            );
        }
    }
}

#[test]
fn warm_fit_matches_cold_across_drift_magnitudes() {
    for strategy in strategies() {
        let config = config(strategy);
        // The serving model a monitor would be holding when the refit
        // fires: a cold fit on the pre-drift window.
        let serving = window(0..64, 7, 0.0, None).fit(&config).unwrap();
        // Drift scenarios, mildest to harshest: identical content,
        // diurnal continuation (the window slid 16 bins), and a
        // re-seeded feed with a ×1.4 level shift on half the flows.
        let scenarios: [(&str, TrainingWindow); 3] = [
            ("no-drift", window(0..64, 7, 0.0, None)),
            ("diurnal", window(16..80, 7, 0.0, None)),
            ("shift-1.4x", window(16..80, 9, 0.4, None)),
        ];
        for (what, target) in scenarios {
            let cold = target.fit(&config).unwrap();
            let (warm, trace) = target.fit_warm(&config, Some(&serving)).unwrap();
            assert!(
                !trace.rounds.is_empty(),
                "{what}: trace must record round 0"
            );
            assert_equivalent(&cold, &warm, config.alpha, what);
            // The wide entropy fit really ran warm-started wherever the
            // partial engine was engaged.
            if strategy == FitStrategy::Partial {
                assert!(trace.any_warm(), "{what}: partial fits must warm-start");
            }
        }
    }
}

#[test]
fn trimming_rounds_downdate_and_still_match_the_cold_fit() {
    for strategy in strategies() {
        let config = config(strategy);
        let serving = window(0..64, 7, 0.0, None).fit(&config).unwrap();
        // One outlier bin: the suspicion gate flags it, so the warm
        // engine takes the downdate path for round 1's moments while the
        // cold spec re-accumulates the 63 clean rows.
        let target = window(16..80, 7, 0.0, Some(40));
        let cold = target.fit(&config).unwrap();
        let (warm, trace) = target.fit_warm(&config, Some(&serving)).unwrap();
        assert_eq!(
            trace.rounds.len(),
            2,
            "spiked fixture must execute a trimming round"
        );
        let round1 = &trace.rounds[1];
        assert!(round1.flagged_bins >= 1, "spike bin must be flagged");
        assert!(
            round1.downdated,
            "small flagged set must take the downdate path"
        );
        assert_eq!(round1.training_bins + round1.flagged_bins, 64);
        assert_equivalent(&cold, &warm, config.alpha, "spiked");
    }
}

#[test]
fn warm_fit_is_a_pure_function_of_history_and_serving_model() {
    for strategy in strategies() {
        let config = config(strategy);
        let serving = window(0..64, 7, 0.0, None).fit(&config).unwrap();
        let a = window(16..80, 7, 0.0, Some(40));
        let b = window(16..80, 7, 0.0, Some(40));
        let (fa, ta) = a.fit_warm(&config, Some(&serving)).unwrap();
        let (fb, tb) = b.fit_warm(&config, Some(&serving)).unwrap();
        // Bit-identical models: same SPE, same thresholds, on every
        // detector. (Timing is observational and excluded.)
        let probe_bytes = vec![1.1e5; P];
        let probe_entropy = vec![2.0; 4 * P];
        assert_eq!(
            fa.bytes_model().spe(&probe_bytes).unwrap(),
            fb.bytes_model().spe(&probe_bytes).unwrap()
        );
        assert_eq!(
            fa.entropy_model().spe(&probe_entropy).unwrap(),
            fb.entropy_model().spe(&probe_entropy).unwrap()
        );
        assert_eq!(
            fa.bytes_model().threshold(config.alpha).unwrap(),
            fb.bytes_model().threshold(config.alpha).unwrap()
        );
        assert_eq!(
            fa.entropy_model().threshold(config.alpha).unwrap(),
            fb.entropy_model().threshold(config.alpha).unwrap()
        );
        assert_eq!(ta.rounds.len(), tb.rounds.len());
        for (ra, rb) in ta.rounds.iter().zip(&tb.rounds) {
            assert_eq!(ra.training_bins, rb.training_bins);
            assert_eq!(ra.flagged_bins, rb.flagged_bins);
            assert_eq!(ra.warm_start, rb.warm_start);
            assert_eq!(ra.downdated, rb.downdated);
            assert_eq!(ra.cycles, rb.cycles);
        }
    }
}

#[test]
fn warm_and_cold_models_alarm_identically_on_the_lifecycle_scenario() {
    // The monitor-lifecycle fixture: 160 bins, a port scan at bin 70
    // (inside the training window) and an alpha flow at 125 (scored).
    let d = {
        let config = DatasetConfig {
            seed: 11,
            n_bins: 160,
            sample_rate: 100,
            traffic_scale: 0.03,
            rate_noise: 0.03,
            anonymize: false,
        };
        let events = vec![
            AnomalyEvent {
                label: AnomalyLabel::PortScan,
                start_bin: 70,
                duration: 1,
                flows: vec![2],
                packets_per_cell: 220.0,
                seed: 5,
            },
            AnomalyEvent {
                label: AnomalyLabel::AlphaFlow,
                start_bin: 125,
                duration: 2,
                flows: vec![6],
                packets_per_cell: 420.0,
                seed: 6,
            },
        ];
        Dataset::generate(Topology::line(3), config, events)
    };
    for strategy in strategies() {
        let config = DiagnoserConfig {
            refit_rounds: 1,
            strategy,
            ..Default::default()
        };
        // Replay the monitor's window state at the bin-119 refit, then
        // fit it cold (the spec) and warm (chained through the bin-39
        // and bin-79 models, exactly like the live monitor).
        let mut w = TrainingWindow::new(d.n_flows(), 80, 20).unwrap();
        let mut chain: Option<FittedDiagnoser> = None;
        for bin in 0..=119 {
            w.push_bin(
                bin,
                d.volumes.bytes().row(bin),
                d.volumes.packets().row(bin),
                &d.tensor.unfolded_row(bin),
            )
            .unwrap();
            if bin == 39 || bin == 79 || bin == 119 {
                if bin == 119 {
                    let cold = w.fit(&config).unwrap();
                    let (warm, _) = w.fit_warm(&config, chain.as_ref()).unwrap();
                    let mut cold_scorer = cold.streaming(config.alpha).unwrap();
                    let mut warm_scorer = warm.streaming(config.alpha).unwrap();
                    let mut alarms = 0;
                    for score_bin in 120..160 {
                        let rows = (
                            d.volumes.bytes().row(score_bin),
                            d.volumes.packets().row(score_bin),
                            d.tensor.unfolded_row(score_bin),
                        );
                        let dc = cold_scorer
                            .score_rows(score_bin, rows.0, rows.1, &rows.2)
                            .unwrap();
                        let dw = warm_scorer
                            .score_rows(score_bin, rows.0, rows.1, &rows.2)
                            .unwrap();
                        assert_eq!(
                            dc.is_some(),
                            dw.is_some(),
                            "alarm decision diverged at bin {score_bin}"
                        );
                        if let (Some(dc), Some(dw)) = (&dc, &dw) {
                            assert_eq!(dc.methods, dw.methods, "methods at bin {score_bin}");
                            assert_eq!(
                                dc.flows.iter().map(|f| f.flow).collect::<Vec<_>>(),
                                dw.flows.iter().map(|f| f.flow).collect::<Vec<_>>(),
                                "blamed flows at bin {score_bin}"
                            );
                            alarms += 1;
                        }
                    }
                    assert!(
                        alarms > 0,
                        "fixture must alarm post-refit for the test to bite"
                    );
                } else {
                    let (fitted, _) = w.fit_warm(&config, chain.as_ref()).unwrap();
                    chain = Some(fitted);
                }
            }
        }
    }
}
