//! Smoke test for the workspace surface: every re-export the umbrella
//! `entromine` crate promises must resolve and stay importable. This file
//! compiling *is* most of the test; the assertions below pin the handful
//! of cross-crate aliases that regressed historically (paths moving
//! between `entromine_net::packet` and the `entropy` re-export, the
//! `synth::distr` samplers, and the four-feature vocabulary).

#![allow(unused_imports)]

// The pipeline surface of the core crate.
use entromine::{
    anomaly_point_matrix, cluster_rows, label_breakdown, match_truth, unit_norm, ClassifierConfig,
    ClusterAlgorithm, ClusterRow, DetectionMethods, Diagnoser, DiagnoserConfig, Diagnosis,
    DiagnosisError, DiagnosisReport, FitStrategy, FittedDiagnoser, LabelRow, MatchOutcome,
    ThresholdPolicy,
};

// Layer re-exports: each substrate is reachable through the umbrella.
use entromine::cluster::{agglomerative, variation_curve, AxisSign, KMeans, Linkage, Seeding};
use entromine::entropy::{
    normalized_entropy, sample_entropy, BinAccumulator, BinSummary, EntropyTensor, Feature,
    FeatureHistogram, VolumeMatrix, FEATURES,
};
use entromine::linalg::{
    stats, sym_eigen, sym_trace_cubed, top_k_eigen, top_k_eigen_detailed, AxisRequest, Mat,
    MomentAccumulator, Pca, ResidualPowerSums, Spectrum, TopKInfo,
};
use entromine::net::{
    AddressPlan, FlowCache, FlowKey, Ipv4, OdIndexer, OdPair, PacketHeader, Prefix, PrefixTable,
    Protocol, Topology, ABILENE_ANON_BITS,
};
use entromine::subspace::{
    empirical_quantile, q_statistic_threshold, q_threshold_from_power_sums, Detection,
    DimSelection, MultiwayFitter, MultiwayModel, SubspaceModel,
};
use entromine::synth::distr::{poisson, standard_normal, zipf_weights, AliasTable};
use entromine::synth::{
    mix64, AnomalyEvent, AnomalyLabel, Dataset, DatasetConfig, InjectedAnomaly, Schedule,
    SyntheticNetwork, TraceKind,
};

#[test]
fn feature_vocabulary_is_shared_across_layers() {
    // `entropy::Feature` must be *the same type* as `net::packet::Feature`
    // (a re-export, not a parallel definition): assignability proves it.
    let f: entromine::entropy::Feature = entromine::net::packet::Feature::SrcIp;
    assert_eq!(f, FEATURES[0]);
    assert_eq!(FEATURES.len(), 4);
}

#[test]
fn umbrella_layers_interoperate() {
    // Types from different re-exported layers flow through one another:
    // net topology -> synth dataset -> entropy tensor dimensions.
    let topo = Topology::abilene();
    assert_eq!(topo.n_pops(), 11);
    let indexer = OdIndexer::new(topo.n_pops());
    assert_eq!(indexer.n_flows(), 121);
}

#[test]
fn unit_norm_is_reachable_and_correct() {
    let v = unit_norm([2.0, 0.0, 0.0, 0.0]);
    assert_eq!(v, [1.0, 0.0, 0.0, 0.0]);
}

#[test]
fn spectral_engine_knobs_are_on_the_default_config() {
    // The core re-exports and the subspace originals are the same types,
    // and the defaults are the documented ones.
    let config = DiagnoserConfig::default();
    assert_eq!(config.strategy, entromine::subspace::FitStrategy::Auto);
    assert_eq!(
        config.threshold_policy,
        entromine::subspace::ThresholdPolicy::JacksonMudholkar
    );
    assert_eq!(FitStrategy::default(), FitStrategy::Auto);
    assert_eq!(
        ThresholdPolicy::default(),
        ThresholdPolicy::JacksonMudholkar
    );
}
