//! Batch vs. streaming equivalence — the contract of the fit/score split.
//!
//! The streaming engine is only admissible if it is *invisible* in the
//! results: replaying a dataset's packets through the watermark-driven
//! ingest stage (`StreamingGridBuilder`) and scoring each finalized bin
//! online (`StreamingDiagnoser`) must produce exactly the `Diagnosis` set
//! the batch pipeline reports on the same data. Not "statistically
//! similar" — identical bins, identical methods, bit-identical residual
//! magnitudes, identical blamed flows.
//!
//! The fixed-seed test pins one richly anomalous dataset; the proptest
//! sweeps random seeds, topology sizes, and anomaly placements.

use entromine::entropy::{StreamConfig, StreamingGridBuilder, FEATURES};
use entromine::net::Topology;
use entromine::synth::{AnomalyEvent, AnomalyLabel, Dataset, DatasetConfig};
use entromine::{Diagnoser, DiagnoserConfig, Diagnosis, FitStrategy, ThresholdPolicy};
use proptest::prelude::*;

const BIN_SECS: u64 = DatasetConfig::BIN_SECS;

fn config(seed: u64, n_bins: usize) -> DatasetConfig {
    DatasetConfig {
        seed,
        n_bins,
        sample_rate: 100,
        traffic_scale: 0.03,
        rate_noise: 0.03,
        anonymize: false,
    }
}

/// Streams every packet of `dataset` through the ingest stage and the
/// online scorer, returning the diagnoses in emission order.
fn stream_diagnoses(
    dataset: &Dataset,
    fitted: &entromine::FittedDiagnoser,
    alpha: f64,
) -> Vec<Diagnosis> {
    let p = dataset.n_flows();
    let mut grid = StreamingGridBuilder::new(StreamConfig::new(p)).expect("grid");
    let mut monitor = fitted.streaming(alpha).expect("scorer");
    let mut out = Vec::new();
    for bin in 0..dataset.n_bins() {
        for flow in 0..p {
            for pkt in dataset.net.cell_packets(bin, flow, &dataset.truth) {
                grid.offer_packet(flow, &pkt).expect("offer");
            }
        }
        for sealed in grid.advance_watermark((bin + 1) as u64 * BIN_SECS) {
            // The ingest stage must reconstruct the batch grid exactly.
            for (flow, summary) in sealed.summaries.iter().enumerate() {
                assert_eq!(
                    dataset.volumes.packets()[(sealed.bin, flow)],
                    summary.packets as f64
                );
                assert_eq!(
                    dataset.volumes.bytes()[(sealed.bin, flow)],
                    summary.bytes as f64
                );
                for f in FEATURES {
                    assert_eq!(
                        dataset.tensor.get(sealed.bin, flow, f),
                        summary.entropy[f.index()],
                        "entropy diverged at bin {} flow {flow} feature {f}",
                        sealed.bin
                    );
                }
            }
            if let Some(diag) = monitor.score_bin(&sealed).expect("score") {
                out.push(diag);
            }
        }
    }
    assert_eq!(grid.late_events(), 0, "replay must not generate stragglers");
    out
}

/// Asserts two diagnosis sets are exactly the same detections.
fn assert_identical(batch: &[Diagnosis], streamed: &[Diagnosis]) {
    assert_eq!(
        batch.iter().map(|d| d.bin).collect::<Vec<_>>(),
        streamed.iter().map(|d| d.bin).collect::<Vec<_>>(),
        "batch and streaming flagged different bins"
    );
    for (a, b) in batch.iter().zip(streamed) {
        assert_eq!(a.methods, b.methods, "methods diverged at bin {}", a.bin);
        // Bit-identical, not approximately equal: both paths run the same
        // score code on the same rows.
        assert_eq!(a.entropy_spe, b.entropy_spe, "entropy SPE at bin {}", a.bin);
        assert_eq!(a.bytes_spe, b.bytes_spe, "bytes SPE at bin {}", a.bin);
        assert_eq!(a.packets_spe, b.packets_spe, "packets SPE at bin {}", a.bin);
        assert_eq!(
            a.flows.iter().map(|f| f.flow).collect::<Vec<_>>(),
            b.flows.iter().map(|f| f.flow).collect::<Vec<_>>(),
            "blamed flows diverged at bin {}",
            a.bin
        );
        assert_eq!(a.point, b.point, "entropy-space point at bin {}", a.bin);
    }
}

#[test]
fn streaming_engine_reproduces_batch_diagnoses() {
    let events = vec![
        AnomalyEvent {
            label: AnomalyLabel::PortScan,
            start_bin: 30,
            duration: 1,
            flows: vec![2],
            packets_per_cell: 150.0,
            seed: 5,
        },
        AnomalyEvent {
            label: AnomalyLabel::AlphaFlow,
            start_bin: 55,
            duration: 2,
            flows: vec![6],
            packets_per_cell: 400.0,
            seed: 6,
        },
        AnomalyEvent {
            label: AnomalyLabel::Outage,
            start_bin: 70,
            duration: 1,
            flows: vec![1],
            packets_per_cell: 0.0,
            seed: 7,
        },
    ];
    let dataset = Dataset::generate(Topology::line(3), config(42, 90), events);
    let diagnoser = Diagnoser::new(DiagnoserConfig::default());
    let fitted = diagnoser.fit(&dataset).expect("fit");
    let alpha = fitted.config().alpha;
    let batch = fitted.diagnose(&dataset).expect("batch diagnose");
    let streamed = stream_diagnoses(&dataset, &fitted, alpha);
    assert_identical(&batch.diagnoses, &streamed);
    assert!(
        !batch.diagnoses.is_empty(),
        "fixture must actually detect something for the test to mean anything"
    );
}

#[test]
fn late_packets_are_dropped_not_misfiled() {
    // A straggler arriving after its bin sealed must not perturb any
    // later bin's summary.
    let dataset = Dataset::clean(Topology::line(2), config(7, 12));
    let p = dataset.n_flows();
    let mut grid = StreamingGridBuilder::new(StreamConfig::new(p)).expect("grid");
    let mut straggler = None;
    for bin in 0..dataset.n_bins() {
        for flow in 0..p {
            for pkt in dataset.net.cell_packets(bin, flow, &[]) {
                if bin == 0 && straggler.is_none() {
                    straggler = Some(pkt);
                    continue; // withhold one packet of bin 0
                }
                grid.offer_packet(flow, &pkt).expect("offer");
            }
        }
        if bin == 2 {
            // Replay the withheld bin-0 packet long after bin 0 sealed.
            grid.offer_packet(0, &straggler.unwrap()).expect("offer");
        }
        let _ = grid.advance_watermark((bin + 1) as u64 * BIN_SECS);
    }
    assert_eq!(grid.late_events(), 1);
}

#[test]
fn streaming_equals_batch_under_every_fit_strategy_and_policy() {
    // The fit/score split means equivalence must be independent of *how*
    // the models were fitted (the score path never touches the engine)
    // and of how alpha became a threshold. One dataset, every engine,
    // both threshold policies.
    let event = AnomalyEvent {
        label: AnomalyLabel::PortScan,
        start_bin: 25,
        duration: 1,
        flows: vec![3],
        packets_per_cell: 200.0,
        seed: 11,
    };
    let dataset = Dataset::generate(Topology::line(3), config(77, 60), vec![event]);
    for strategy in [
        FitStrategy::Auto,
        FitStrategy::Full,
        FitStrategy::Partial,
        FitStrategy::Gram,
    ] {
        for policy in [
            ThresholdPolicy::JacksonMudholkar,
            ThresholdPolicy::Empirical,
        ] {
            let diagnoser = Diagnoser::new(DiagnoserConfig {
                strategy,
                threshold_policy: policy,
                ..Default::default()
            });
            let fitted = diagnoser.fit(&dataset).expect("fit");
            let batch = fitted.diagnose(&dataset).expect("diagnose");
            let streamed = stream_diagnoses(&dataset, &fitted, fitted.config().alpha);
            assert_identical(&batch.diagnoses, &streamed);
        }
    }
}

proptest! {
    // Dataset generation dominates runtime; a handful of random cases at
    // small scale still covers seeds × topology × placement.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn streaming_equals_batch_on_random_datasets(
        seed in 0u64..1_000,
        pops in 2usize..4,
        anomaly_bin in 10usize..35,
        anomaly_flow in 0usize..4,
        intensity in 50.0f64..300.0,
        label_idx in 0usize..3,
    ) {
        let label = [
            AnomalyLabel::PortScan,
            AnomalyLabel::NetworkScan,
            AnomalyLabel::AlphaFlow,
        ][label_idx];
        let n_flows = pops * pops;
        let event = AnomalyEvent {
            label,
            start_bin: anomaly_bin,
            duration: 1,
            flows: vec![anomaly_flow % n_flows],
            packets_per_cell: intensity,
            seed: seed ^ 0x77,
        };
        let dataset = Dataset::generate(Topology::line(pops), config(seed, 40), vec![event]);
        let fitted = Diagnoser::new(DiagnoserConfig {
            // One refit round keeps runtime bounded; correctness is
            // independent of the training details since both paths share
            // the trained models.
            refit_rounds: 1,
            ..Default::default()
        }).fit(&dataset).expect("fit");
        let batch = fitted.diagnose(&dataset).expect("diagnose");
        let streamed = stream_diagnoses(&dataset, &fitted, fitted.config().alpha);
        assert_identical(&batch.diagnoses, &streamed);
    }
}
