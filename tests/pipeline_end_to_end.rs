//! Cross-crate integration test: the full synth → detect → identify →
//! classify pipeline on a seeded dataset with ground truth.

use entromine::cluster::Linkage;
use entromine::net::Topology;
use entromine::synth::{AnomalyLabel, Dataset, DatasetConfig, Schedule, SyntheticNetwork};
use entromine::{
    anomaly_point_matrix, label_breakdown, match_truth, ClassifierConfig, ClusterAlgorithm,
    Diagnoser, MatchOutcome,
};

fn config(seed: u64) -> DatasetConfig {
    DatasetConfig {
        seed,
        n_bins: 192,
        sample_rate: 100,
        traffic_scale: 1.0,
        rate_noise: 0.01,
        anonymize: true,
    }
}

fn scheduled(seed: u64) -> Dataset {
    let cfg = config(seed);
    let net = SyntheticNetwork::new(Topology::abilene(), cfg.clone());
    let events = Schedule::uniform(seed ^ 0xE2E, 2).materialize(&net);
    Dataset::generate(Topology::abilene(), cfg, events)
}

#[test]
fn full_pipeline_detects_identifies_and_classifies() {
    let dataset = scheduled(101);
    assert!(!dataset.truth.is_empty());

    let fitted = Diagnoser::default().fit(&dataset).expect("fit");
    let report = fitted.diagnose(&dataset).expect("diagnose");
    assert!(
        report.total() >= 5,
        "expected a population of detections, got {}",
        report.total()
    );

    // A majority of detections must match injected ground truth.
    let outcomes = match_truth(&report, &dataset.truth);
    let matched = outcomes
        .iter()
        .filter(|o| matches!(o, MatchOutcome::Truth(_)))
        .count();
    assert!(
        matched * 2 > report.total(),
        "only {matched}/{} detections match ground truth",
        report.total()
    );

    // Identified flows of matched detections must belong to the event.
    let mut correct_flows = 0usize;
    let mut checked = 0usize;
    for (diag, outcome) in report.diagnoses.iter().zip(&outcomes) {
        if let (MatchOutcome::Truth(t), Some(first)) = (outcome, diag.flows.first()) {
            // Outages suppress a whole PoP; identification may legitimately
            // surface any suppressed flow, so restrict the accuracy check
            // to packet-injecting events.
            if dataset.truth[*t].event.label == AnomalyLabel::Outage {
                continue;
            }
            checked += 1;
            if dataset.truth[*t].event.flows.contains(&first.flow) {
                correct_flows += 1;
            }
        }
    }
    if checked > 0 {
        assert!(
            correct_flows * 3 >= checked * 2,
            "identification correct on only {correct_flows}/{checked}"
        );
    }

    // Classification runs end to end when enough points exist.
    let (points, _) = anomaly_point_matrix(&report);
    if points.rows() >= 4 {
        let clustering = ClassifierConfig {
            k: 4.min(points.rows()),
            algorithm: ClusterAlgorithm::Hierarchical(Linkage::Single),
        }
        .classify(&points)
        .expect("classify");
        assert_eq!(clustering.assignments.len(), points.rows());
        // Every point sits on the unit sphere.
        for i in 0..points.rows() {
            let norm: f64 = points.row(i).iter().map(|v| v * v).sum();
            assert!((norm - 1.0).abs() < 1e-9, "point {i} not unit norm");
        }
    }
}

#[test]
fn label_breakdown_accounts_for_every_event() {
    let dataset = scheduled(102);
    let fitted = Diagnoser::default().fit(&dataset).expect("fit");
    let report = fitted.diagnose(&dataset).expect("diagnose");
    let rows = label_breakdown(&report, &dataset.truth);
    let accounted: usize = rows
        .iter()
        .map(|r| r.found_in_volume + r.additional_in_entropy + r.missed)
        .sum();
    assert_eq!(accounted, dataset.truth.len());
    for row in &rows {
        assert_eq!(
            row.injected,
            row.found_in_volume + row.additional_in_entropy + row.missed,
            "row {row:?} inconsistent"
        );
    }
}

#[test]
fn determinism_same_seed_same_report() {
    let a = scheduled(103);
    let b = scheduled(103);
    let ra = Diagnoser::default()
        .fit(&a)
        .expect("fit")
        .diagnose(&a)
        .expect("diagnose");
    let rb = Diagnoser::default()
        .fit(&b)
        .expect("fit")
        .diagnose(&b)
        .expect("diagnose");
    assert_eq!(ra.total(), rb.total());
    for (x, y) in ra.diagnoses.iter().zip(&rb.diagnoses) {
        assert_eq!(x.bin, y.bin);
        assert_eq!(x.methods, y.methods);
        assert_eq!(x.entropy_spe, y.entropy_spe);
        assert_eq!(
            x.flows.first().map(|f| f.flow),
            y.flows.first().map(|f| f.flow)
        );
    }
}

#[test]
fn different_seeds_give_different_anomaly_populations() {
    let a = scheduled(104);
    let b = scheduled(105);
    // Same schedule shape but different traffic: reports should differ in
    // at least their SPE values.
    let ra = Diagnoser::default()
        .fit(&a)
        .expect("fit")
        .diagnose(&a)
        .expect("diagnose");
    let rb = Diagnoser::default()
        .fit(&b)
        .expect("fit")
        .diagnose(&b)
        .expect("diagnose");
    let sa: f64 = ra.diagnoses.iter().map(|d| d.entropy_spe).sum();
    let sb: f64 = rb.diagnoses.iter().map(|d| d.entropy_spe).sum();
    assert_ne!(sa, sb);
}
