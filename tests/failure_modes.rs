//! Failure-injection integration tests: the pipeline must behave sanely on
//! degenerate and adversarial inputs — missing data, constant traffic,
//! tiny networks — returning errors or clean results rather than
//! panicking. (The paper's Geant archive contained real outages and
//! missing-data periods; §6.1 attributes ~130 of its detections to them.)

use entromine::entropy::FEATURES;
use entromine::net::Topology;
use entromine::synth::{Dataset, DatasetConfig};
use entromine::{Diagnoser, DiagnosisError};

fn config(seed: u64, bins: usize) -> DatasetConfig {
    DatasetConfig {
        seed,
        n_bins: bins,
        sample_rate: 100,
        traffic_scale: 0.05,
        rate_noise: 0.02,
        anonymize: false,
    }
}

#[test]
fn missing_data_bins_surface_as_detections_not_panics() {
    // Blank a stretch of bins (collector outage) after generation.
    let mut dataset = Dataset::clean(Topology::abilene(), config(1, 160));
    for bin in 80..84 {
        for flow in 0..dataset.n_flows() {
            for f in FEATURES {
                dataset.tensor.set(bin, flow, f, 0.0);
            }
        }
    }
    let fitted = Diagnoser::default().fit(&dataset).expect("fit");
    let report = fitted.diagnose(&dataset).expect("diagnose");
    // All-zero entropy rows are wildly atypical: they must be flagged.
    for bin in 80..84 {
        assert!(
            report.diagnoses.iter().any(|d| d.bin == bin),
            "missing-data bin {bin} not flagged"
        );
    }
}

#[test]
fn single_missing_cell_does_not_poison_neighbours() {
    let mut dataset = Dataset::clean(Topology::abilene(), config(2, 120));
    for f in FEATURES {
        dataset.tensor.set(60, 17, f, 0.0);
    }
    let fitted = Diagnoser::default().fit(&dataset).expect("fit");
    let report = fitted.diagnose(&dataset).expect("diagnose");
    // Neighbouring bins stay clean.
    assert!(!report.diagnoses.iter().any(|d| d.bin == 59 || d.bin == 61));
}

#[test]
fn tiny_windows_are_rejected_cleanly() {
    let dataset = Dataset::clean(Topology::line(2), config(3, 2));
    match Diagnoser::default().fit(&dataset) {
        Err(DiagnosisError::BadDataset(_)) => {}
        other => panic!("expected BadDataset, got {other:?}"),
    }
}

#[test]
fn zero_traffic_network_fits_without_detections() {
    // traffic_scale 0 produces all-empty cells: zero variance everywhere.
    let mut cfg = config(4, 60);
    cfg.traffic_scale = 0.0;
    let dataset = Dataset::clean(Topology::line(3), cfg);
    let fitted = Diagnoser::default().fit(&dataset).expect("fit");
    let report = fitted.diagnose(&dataset).expect("diagnose");
    assert_eq!(report.total(), 0, "constant zero traffic has no anomalies");
}

#[test]
fn single_flow_network_rejected() {
    // line(1): one PoP, one (self) OD flow. The subspace method models
    // *ensemble* correlation; a single flow is out of scope and must be
    // rejected with a clear error, not a numerics failure.
    let dataset = Dataset::clean(Topology::line(1), config(5, 60));
    match Diagnoser::default().fit(&dataset) {
        Err(DiagnosisError::BadDataset(msg)) => {
            assert!(msg.contains("OD flows"), "unexpected message: {msg}")
        }
        other => panic!("expected BadDataset, got {other:?}"),
    }
}

#[test]
fn refit_disabled_still_works() {
    let cfg = entromine::DiagnoserConfig {
        refit_rounds: 0,
        ..Default::default()
    };
    let dataset = Dataset::clean(Topology::abilene(), config(6, 100));
    let fitted = Diagnoser::new(cfg).fit(&dataset).expect("fit");
    let report = fitted.diagnose(&dataset).expect("diagnose");
    assert!(report.total() < 20);
}

#[test]
fn extreme_alpha_values_rejected() {
    let dataset = Dataset::clean(Topology::line(3), config(7, 60));
    let fitted = Diagnoser::default().fit(&dataset).expect("fit");
    assert!(fitted.diagnose_at(&dataset, 0.0).is_err());
    assert!(fitted.diagnose_at(&dataset, 1.0).is_err());
    assert!(fitted.diagnose_at(&dataset, -3.0).is_err());
}
