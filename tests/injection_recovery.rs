//! Integration test: every anomaly class from Table 1, injected at a
//! healthy intensity, is detected and attributed to the right OD flow —
//! and its entropy-space position matches the qualitative signature the
//! paper assigns it (Table 1 / Table 6).

use entromine::net::Topology;
use entromine::synth::{AnomalyEvent, AnomalyLabel, Dataset, DatasetConfig, SyntheticNetwork};
use entromine::Diagnoser;

fn config(seed: u64) -> DatasetConfig {
    DatasetConfig {
        seed,
        n_bins: 144,
        sample_rate: 100,
        traffic_scale: 1.0,
        rate_noise: 0.01,
        anonymize: false,
    }
}

/// Injects one event of `label` at 70% of the target flow's rate and
/// returns (detected?, first identified flow, entropy-space point).
fn run_one(label: AnomalyLabel, seed: u64) -> (bool, Option<usize>, Option<[f64; 4]>, usize) {
    let cfg = config(seed);
    let net = SyntheticNetwork::new(Topology::abilene(), cfg.clone());
    // A mid-sized flow: large relative shift, moderate absolute volume.
    let flow = (0..net.indexer().n_flows())
        .min_by_key(|&f| (net.rates().base_rate(f) - 2000.0).abs() as u64)
        .unwrap();
    let event = AnomalyEvent {
        label,
        start_bin: 70,
        duration: 1,
        flows: vec![flow],
        packets_per_cell: 0.7 * net.rates().base_rate(flow),
        seed: seed ^ 0xE7E7,
    };
    let dataset = Dataset::generate(Topology::abilene(), cfg, vec![event]);
    let fitted = Diagnoser::default().fit(&dataset).expect("fit");
    let report = fitted.diagnose(&dataset).expect("diagnose");
    match report.diagnoses.iter().find(|d| d.bin == 70) {
        Some(d) => (true, d.flows.first().map(|f| f.flow), d.point, flow),
        None => (false, None, None, flow),
    }
}

#[test]
fn port_scan_recovered_with_signature() {
    let (hit, blamed, point, flow) = run_one(AnomalyLabel::PortScan, 11);
    assert!(hit, "port scan missed");
    assert_eq!(blamed, Some(flow));
    let p = point.expect("point");
    assert!(p[3] > 0.0, "dstPort must disperse: {p:?}");
    assert!(p[2] < 0.0, "dstIP must concentrate: {p:?}");
}

#[test]
fn network_scan_recovered_with_signature() {
    let (hit, blamed, point, flow) = run_one(AnomalyLabel::NetworkScan, 12);
    assert!(hit, "network scan missed");
    assert_eq!(blamed, Some(flow));
    let p = point.expect("point");
    // Table 6: network scans have strongly dispersed source ports and
    // concentrated destination ports.
    assert!(p[1] > 0.0, "srcPort must disperse: {p:?}");
    assert!(p[3] < 0.0, "dstPort must concentrate: {p:?}");
}

#[test]
fn ddos_recovered_with_signature() {
    let (hit, blamed, point, flow) = run_one(AnomalyLabel::DosMulti, 13);
    assert!(hit, "DDOS missed");
    assert_eq!(blamed, Some(flow));
    let p = point.expect("point");
    // Spoofed sources disperse srcIP; one victim concentrates dstIP.
    assert!(p[0] > 0.0, "srcIP must disperse: {p:?}");
    assert!(p[2] < 0.0, "dstIP must concentrate: {p:?}");
}

#[test]
fn worm_recovered_with_signature() {
    let (hit, blamed, point, flow) = run_one(AnomalyLabel::Worm, 14);
    assert!(hit, "worm missed");
    assert_eq!(blamed, Some(flow));
    let p = point.expect("point");
    // Few infected sources scanning many targets on one port.
    assert!(p[2] > 0.0, "dstIP must disperse: {p:?}");
    assert!(p[3] < 0.0, "dstPort must concentrate: {p:?}");
}

#[test]
fn alpha_flow_detected() {
    let (hit, _, _, _) = run_one(AnomalyLabel::AlphaFlow, 15);
    assert!(hit, "alpha flow missed");
}

#[test]
fn flash_crowd_detected_and_blamed() {
    let (hit, blamed, point, flow) = run_one(AnomalyLabel::FlashCrowd, 16);
    assert!(hit, "flash crowd missed");
    assert_eq!(blamed, Some(flow));
    // Flash crowd concentrates the destination (one busy service).
    let p = point.expect("point");
    assert!(p[2] < 0.0, "dstIP must concentrate: {p:?}");
}

#[test]
fn outage_detected() {
    // An outage event suppresses traffic on all flows from one PoP.
    let cfg = config(17);
    let net = SyntheticNetwork::new(Topology::abilene(), cfg.clone());
    let p = net.indexer().n_pops();
    let flows: Vec<usize> = (0..p)
        .map(|d| net.indexer().index(entromine::net::OdPair::new(3, d)))
        .collect();
    let event = AnomalyEvent {
        label: AnomalyLabel::Outage,
        start_bin: 70,
        duration: 2,
        flows,
        packets_per_cell: 0.0,
        seed: 0xDEAD,
    };
    let dataset = Dataset::generate(Topology::abilene(), cfg, vec![event]);
    let fitted = Diagnoser::default().fit(&dataset).expect("fit");
    let report = fitted.diagnose(&dataset).expect("diagnose");
    assert!(
        report.diagnoses.iter().any(|d| d.bin == 70 || d.bin == 71),
        "outage missed entirely"
    );
}
