//! Fault injection — the no-fault bitwise pin and chaos recovery.
//!
//! Three contracts of the fault-injection harness and the monitor's
//! graceful-degradation layer:
//!
//! 1. **Invisibility.** Wrapping the feed in a [`FaultInjector`] with
//!    [`FaultPlan::none`] is *bitwise* a no-op: every delivery is an
//!    exact copy of its input, and the monitor's verdicts, thresholds,
//!    window contents, and counters are identical to the unwrapped run.
//! 2. **Containment.** Injected garbage (NaN/Inf rows) is quarantined at
//!    the door: the fitted model, its thresholds, and its detections are
//!    bit-identical to a run that never saw the garbage.
//! 3. **Recovery.** Under arbitrary seeded fault schedules — outages,
//!    duplicates, reordering, garbage storms, refit-poisoning huge
//!    values — the monitor never panics, never drops or double-scores a
//!    delivery, and always returns to `Fitted` once the faults stop.
//!
//! The chaos property runs 10 000 random schedules; failures reproduce
//! exactly from the reported inputs (the injector derives every payload
//! from the plan seed and bin index alone).

use entromine::{
    DiagnoserConfig, FaultInjector, FaultKind, FaultPlan, GarbageKind, Monitor, MonitorConfig,
    MonitorState, MonitorStep, RetryPolicy, Verdict,
};
use proptest::prelude::*;

/// Synthetic diurnal rows, identical in shape to the monitor unit-test
/// fixture: a shared seasonal mode plus deterministic per-flow jitter,
/// with `shift` displacing even-indexed flows into the residual subspace.
fn rows(p: usize, bin: usize, shift: f64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let phase = (bin as f64 / 48.0) * std::f64::consts::TAU;
    let jitter = |i: usize| ((bin * 31 + i * 17) % 101) as f64 / 101.0;
    let skew = |i: usize| if i.is_multiple_of(2) { shift } else { 0.0 };
    let bytes: Vec<f64> = (0..p)
        .map(|i| 1e5 * (1.0 + 0.1 * phase.sin()) * (1.0 + skew(i)) + 300.0 * jitter(i))
        .collect();
    let packets: Vec<f64> = bytes.iter().map(|b| b / 100.0).collect();
    let entropy: Vec<f64> = (0..4 * p)
        .map(|i| 2.0 + 0.2 * phase.cos() + 0.02 * jitter(i) + skew(i))
        .collect();
    (bytes, packets, entropy)
}

/// Small fast lifecycle: 8-bin warmup, 16-bin window in 4-bin chunks,
/// scheduled refits every 4 scored bins, 12-bin staleness budget.
fn tiny_config() -> MonitorConfig {
    MonitorConfig {
        diagnoser: DiagnoserConfig {
            dim: entromine::subspace::DimSelection::Fixed(2),
            refit_rounds: 0,
            ..Default::default()
        },
        warmup_bins: 8,
        window_bins: 16,
        chunk_bins: 4,
        refit_interval: Some(4),
        drift: None,
        retry: RetryPolicy::default(),
        staleness_budget: Some(12),
    }
}

/// Collapses a step to comparable bits: bin, verdict discriminant, the
/// verdict's float payloads as raw bits, the staleness flag, and whether
/// a refit ran.
fn fingerprint(step: &MonitorStep) -> (usize, u8, Vec<u64>, bool, bool) {
    let (tag, bits) = match &step.verdict {
        Verdict::Warmup { remaining } => (0u8, vec![*remaining as u64]),
        Verdict::Clean => (1, Vec::new()),
        Verdict::Anomalous(d) => (
            2,
            vec![
                d.entropy_spe.to_bits(),
                d.bytes_spe.to_bits(),
                d.packets_spe.to_bits(),
            ],
        ),
        Verdict::Quarantined => (3, Vec::new()),
    };
    (step.bin, tag, bits, step.stale, step.refit.is_some())
}

fn threshold_bits(m: &Monitor) -> [u64; 3] {
    let (a, b, c) = m.thresholds();
    [a.to_bits(), b.to_bits(), c.to_bits()]
}

#[test]
fn empty_fault_plan_is_bitwise_invisible() {
    let config = tiny_config();
    let mut direct = Monitor::new(4, config).expect("monitor");
    let mut injected = Monitor::new(4, config).expect("monitor");
    let mut inj = FaultInjector::new(&FaultPlan::none());
    for bin in 0..64 {
        // One displaced bin so the anomalous verdict arm is exercised.
        let shift = if bin == 40 { 0.8 } else { 0.0 };
        let (b, p, e) = rows(4, bin, shift);
        let direct_step = direct.observe_rows(bin, &b, &p, &e).expect("observe");
        let deliveries = inj.deliver_rows(bin, &b, &p, &e);
        assert_eq!(deliveries.len(), 1, "no-fault plan must deliver 1:1");
        let d = &deliveries[0];
        assert!(!d.faulted);
        assert_eq!(d.bin, bin);
        assert_eq!(d.bytes, b);
        assert_eq!(d.packets, p);
        assert_eq!(d.entropy, e);
        let injected_step = injected
            .observe_rows(d.bin, &d.bytes, &d.packets, &d.entropy)
            .expect("observe");
        assert_eq!(fingerprint(&direct_step), fingerprint(&injected_step));
    }
    let (held_rows, held_batches) = inj.flush();
    assert!(held_rows.is_empty() && held_batches.is_empty());
    assert_eq!(*inj.stats(), Default::default());
    // The monitors ended bit-identical, not just verdict-identical.
    assert_eq!(threshold_bits(&direct), threshold_bits(&injected));
    assert_eq!(direct.window().bins(), injected.window().bins());
    assert_eq!(direct.bins_scored(), injected.bins_scored());
    assert_eq!(direct.refits(), injected.refits());
    assert_eq!(direct.state(), injected.state());
    assert!(
        direct.detections() >= 1,
        "fixture must detect something for the pin to cover the anomalous arm"
    );
}

#[test]
fn injected_garbage_cannot_flip_the_fitted_model() {
    // The poisoned feed interleaves a NaN-corrupted copy of every bin
    // (odd upstream indices) with the real bin (even indices). Since
    // quarantine keeps garbage out of the training window, the poisoned
    // monitor must end with the *same model* as one that never saw it.
    let config = tiny_config();
    let mut clean = Monitor::new(4, config).expect("monitor");
    let mut poisoned = Monitor::new(4, config).expect("monitor");
    let n_bins = 32;
    let mut plan = FaultPlan {
        seed: 9,
        events: Vec::new(),
    };
    for bin in 0..n_bins {
        plan = plan.with(2 * bin + 1, FaultKind::GarbageRows(GarbageKind::Nan));
    }
    let mut inj = FaultInjector::new(&plan);
    for bin in 0..n_bins {
        let (b, p, e) = rows(4, bin, 0.0);
        let clean_step = clean.observe_rows(bin, &b, &p, &e).expect("observe");
        for d in inj.deliver_rows(2 * bin, &b, &p, &e) {
            let step = poisoned
                .observe_rows(bin, &d.bytes, &d.packets, &d.entropy)
                .expect("observe");
            assert_eq!(fingerprint(&step).1, fingerprint(&clean_step).1);
        }
        for d in inj.deliver_rows(2 * bin + 1, &b, &p, &e) {
            let step = poisoned
                .observe_rows(bin, &d.bytes, &d.packets, &d.entropy)
                .expect("observe");
            assert!(matches!(step.verdict, Verdict::Quarantined));
        }
    }
    assert_eq!(inj.stats().corrupted, n_bins as u64);
    assert_eq!(poisoned.quarantined_bins(), n_bins as u64);
    assert_eq!(poisoned.bins_scored(), clean.bins_scored());
    assert_eq!(poisoned.detections(), clean.detections());
    assert_eq!(poisoned.refits(), clean.refits());
    // Bit-identical thresholds: the garbage never touched the model.
    assert_eq!(threshold_bits(&poisoned), threshold_bits(&clean));
    assert_eq!(poisoned.window().bins(), clean.window().bins());
}

/// Upstream length of every chaos run. Faults are confined to bins
/// 8..24; the clean tail is sized past the worst recovery chain — poison
/// delayed to ~bin 27 takes ≤ 20 pushes to roll fully out of the 16-bin
/// window, and the last failed retry then backs off ≤ 16 bins (the
/// exponential cap) before the healing refit — with slack on top.
const CHAOS_BINS: usize = 80;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10_000))]

    #[test]
    fn chaos_schedules_never_panic_and_always_recover(
        seed in 0u64..1_000_000,
        faults in proptest::collection::vec((8usize..24, 0usize..7, 1usize..4), 1..6),
    ) {
        let mut plan = FaultPlan { seed, events: Vec::new() };
        for &(bin, kind_ix, param) in &faults {
            let kind = match kind_ix {
                0 => FaultKind::DropBin,
                1 => FaultKind::DuplicateBin,
                2 => FaultKind::DelayBin { by: param },
                3 => FaultKind::GarbageRows(GarbageKind::Nan),
                4 => FaultKind::GarbageRows(GarbageKind::Infinite),
                5 => FaultKind::GarbageRows(GarbageKind::HugeFinite),
                _ => FaultKind::GarbageRows(GarbageKind::Constant),
            };
            plan = plan.with(bin, kind);
        }
        let mut inj = FaultInjector::new(&plan);
        let mut m = Monitor::new(4, tiny_config()).expect("monitor");
        let mut delivered = 0u64;
        let mut expect_quarantined = 0u64;
        for bin in 0..CHAOS_BINS {
            let (b, p, e) = rows(4, bin, 0.0);
            let mut deliveries = inj.deliver_rows(bin, &b, &p, &e);
            if bin + 1 == CHAOS_BINS {
                let (held, _) = inj.flush();
                deliveries.extend(held);
            }
            for d in deliveries {
                delivered += 1;
                let finite = d
                    .bytes
                    .iter()
                    .chain(&d.packets)
                    .chain(&d.entropy)
                    .all(|v| v.is_finite());
                if !finite {
                    expect_quarantined += 1;
                }
                // The no-panic, no-error core of the property: whatever
                // the schedule delivers, observing it must succeed.
                let step = match m.observe_rows(d.bin, &d.bytes, &d.packets, &d.entropy) {
                    Ok(step) => step,
                    Err(e) => return Err(format!("observe failed on bin {}: {e}", d.bin)),
                };
                // Exactly one step per delivery, tracking its bin.
                prop_assert_eq!(step.bin, d.bin);
                prop_assert_eq!(
                    matches!(step.verdict, Verdict::Quarantined),
                    !finite,
                    "quarantine must fire exactly on non-finite deliveries"
                );
            }
        }
        // Accounting: no delivery dropped or double-counted.
        prop_assert_eq!(m.bins_observed(), delivered);
        prop_assert_eq!(m.quarantined_bins(), expect_quarantined);
        // Recovery: faults stopped by bin 24 and the tail is clean, so
        // the monitor must be serving a fresh model again.
        let health = m.health();
        prop_assert_eq!(
            health.state,
            MonitorState::Fitted,
            "monitor stuck in {:?} after the faults stopped (plan {:?})",
            health.state,
            plan
        );
        prop_assert!(!health.degraded);
        prop_assert_eq!(health.consecutive_refit_failures, 0);
        prop_assert_eq!(health.backoff_remaining_bins, 0);
    }
}
